// Transition-attribution profiler for the instruction-memory data bus.
//
// Telemetry (docs/OBSERVABILITY.md) reports *aggregate* bus transition
// counts; this layer answers the question the paper is actually about: which
// instructions, basic blocks, and bus lines are burning the transitions the
// encoding failed to remove. A TransitionProfiler observes the same
// (pc, bus word) stream as sim::BusMonitor — through sim::Cpu::run's
// on_fetch hook, the global observe_fetch() gate, or the icache refill hook
// — and attributes the Hamming cost of every word-to-word transition to the
// PC being fetched, split by the word's encoded/unencoded status so residual
// cost after TT selection is directly visible.
//
// Hot-path design: everything is flat per-word arrays indexed off the text
// image base — no hashing, no branches beyond one range check — and the
// (block x line) matrix is updated by iterating only the *set* bits of the
// flipped word. The totals reconcile exactly with a BusMonitor watching the
// same stream: sum over blocks (plus the out-of-image slot) equals
// `bus.fetch.transitions`, per line and in total.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cfg/cfg.h"
#include "telemetry/metrics.h"

namespace asimt::profile {

// One basic block's attributed cost (also produced analytically by
// attribution.h; the two agree exactly for halted runs).
struct BlockCost {
  int index = -1;              // cfg block index; -1 for the out-of-image slot
  std::uint32_t start_pc = 0;  // 0 for the out-of-image slot
  std::uint32_t end_pc = 0;
  std::uint64_t exec = 0;      // executions (stream: fetches of the leader)
  long long transitions = 0;   // dynamic transitions attributed to the block
  bool encoded = false;        // covered by a TT entry (selection result)
};

// Sorts descending by transitions (ties: ascending block index, so output is
// deterministic) and keeps the first `n`.
std::vector<BlockCost> top_blocks(std::vector<BlockCost> all, std::size_t n);

class TransitionProfiler {
 public:
  // Profile a raw word stream over [base, base + 4*n_words): per-word and
  // per-line attribution only (every word maps to one synthetic block).
  TransitionProfiler(std::uint32_t text_base, std::size_t n_words);
  // Profile fetches from `cfg`'s text range with per-basic-block attribution.
  explicit TransitionProfiler(const cfg::Cfg& cfg);

  // Marks [start_pc, start_pc + 4*n_words) as encoded (call once per
  // selected core::BlockEncoding). PCs outside the image are ignored.
  void mark_encoded(std::uint32_t start_pc, std::size_t n_words);

  // The hot path: attribute the transition from the previously fetched word
  // to `word` (the bus value driven for `pc`). Fetches outside the image
  // accumulate into a single out-of-image slot instead of being dropped, so
  // totals still reconcile with a BusMonitor on the same stream.
  void on_fetch(std::uint32_t pc, std::uint32_t word) {
    const std::size_t idx = (pc - base_) / 4;  // below-base pcs wrap huge
    const std::size_t slot = idx < n_words_ ? idx : n_words_;
    ++exec_[slot];
    ++fetches_;
    if (first_) {
      first_ = false;
      prev_ = word;
      return;
    }
    std::uint32_t flipped = prev_ ^ word;
    prev_ = word;
    if (flipped == 0) return;
    trans_[slot] += std::popcount(flipped);
    std::uint64_t* row = &block_line_[static_cast<std::size_t>(block_of_[slot]) * 32];
    do {
      ++row[std::countr_zero(flipped)];
      flipped &= flipped - 1;
    } while (flipped != 0);
  }

  void reset();

  // --- raw per-word views ---------------------------------------------------
  std::uint32_t text_base() const { return base_; }
  std::size_t word_count() const { return n_words_; }
  std::uint64_t fetches() const { return fetches_; }
  std::uint64_t word_exec(std::size_t i) const { return exec_[i]; }
  long long word_transitions(std::size_t i) const { return trans_[i]; }
  bool word_encoded(std::size_t i) const { return encoded_[i] != 0; }

  // --- derived attribution --------------------------------------------------
  long long total_transitions() const;
  long long encoded_transitions() const;    // attributed to encoded words
  long long unencoded_transitions() const;  // attributed to plain words
  long long out_of_image_transitions() const { return trans_[n_words_]; }
  std::uint64_t out_of_image_fetches() const { return exec_[n_words_]; }

  // Per-bus-line totals (columns of the block x line matrix).
  std::array<long long, 32> per_line() const;
  // Transitions on `line` attributed to cfg block `block`.
  std::uint64_t block_line(int block, unsigned line) const;
  int block_count() const { return n_blocks_; }

  // One BlockCost per cfg block, in block order, plus (when any out-of-image
  // fetch happened) a trailing index -1 slot. Sums reconcile with
  // total_transitions() exactly.
  std::vector<BlockCost> blocks() const;

  // Publishes totals on the registry (profile.fetches, profile.transitions,
  // profile.transitions.encoded / .unencoded / .out_of_image). No-op when
  // telemetry is disabled.
  void publish(telemetry::MetricsRegistry& registry =
                   telemetry::MetricsRegistry::global()) const;

 private:
  void init_arrays();

  const cfg::Cfg* cfg_ = nullptr;  // null for the raw-stream constructor
  std::uint32_t base_ = 0;
  std::size_t n_words_ = 0;
  int n_blocks_ = 0;

  // Flat arrays sized n_words_ + 1: the last slot collects out-of-image
  // fetches. block_of_[w] indexes block_line_ rows; unmapped words and the
  // overflow slot share the sentinel row n_blocks_.
  std::vector<std::uint64_t> exec_;
  std::vector<long long> trans_;
  std::vector<std::uint8_t> encoded_;
  std::vector<std::int32_t> block_of_;
  std::vector<std::uint64_t> block_line_;  // (n_blocks_ + 1) x 32, row-major

  std::uint64_t fetches_ = 0;
  std::uint32_t prev_ = 0;
  bool first_ = true;
};

// --- global hook ------------------------------------------------------------
// Telemetry-style gate for call sites that always carry the hook (e.g. a
// fetch loop that may or may not be profiled): observe_fetch costs one
// relaxed atomic load and a predictable branch when no profiler is
// installed. Not thread-safe against concurrent installs mid-run; install
// before the run, clear after (the CLI pattern).
TransitionProfiler* current();
void set_current(TransitionProfiler* profiler);

inline void observe_fetch(std::uint32_t pc, std::uint32_t word) {
  if (TransitionProfiler* p = current()) p->on_fetch(pc, word);
}

}  // namespace asimt::profile
