// Request dispatch for the encoding daemon: newline-delimited JSON in,
// newline-delimited JSON out, no sockets.
//
// This layer is everything `asimt serve` does between reading a line and
// writing one, factored away from file descriptors so tests (and the
// determinism contract) can drive it directly. One request is one JSON
// object on one line:
//
//   {"id": 1, "op": "encode", "text": ".text\n...", "k": 5,
//    "strategy": "dp", "transforms": "paper"}
//
// Operations: "ping", "encode", "verify", "profile", "stats", "metrics"
// (docs/SERVING.md has the full schema). Every reply echoes the request id:
//
//   {"id": 1, "ok": true, "result": {...}}
//   {"id": null, "ok": false, "error": {"kind": "parse", "message": "..."}}
//
// Contracts (enforced by tests/serve/service_test.cpp):
//   - A malformed line NEVER crashes or closes the stream: it produces a
//     structured error reply with a kind from {parse, bad_request,
//     assembly, exec, internal} — the PR 5 structured-error contract across
//     a process boundary.
//   - Replies are byte-identical for byte-identical requests, at any
//     --jobs count and any cache state. Cache hits return the exact bytes
//     the cold encode produced (replies carry no timestamps, no manifest
//     volatile fields, no cache flags).
//
// encode/verify results are cached content-addressed: the key hashes the
// packed vertical bit-line words of the assembled program together with
// (k, transform set, strategy, op) — see serve/cache.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obsv/recorder.h"
#include "serve/admission.h"
#include "serve/cache.h"

namespace asimt::serve {

struct ServiceOptions {
  std::size_t cache_capacity = 4096;
  unsigned cache_shards = 16;
  // Request guards: a line (and the program text inside it) larger than
  // this is a bad_request, not an allocation storm.
  std::size_t max_text_bytes = 1 << 20;
  std::uint64_t max_profile_steps = 100'000'000;
  int min_k = 2;
  int max_k = 12;  // choice tables are 2^k; keep the solver bounded
  // Server-side cap on how long one request may take end to end, and the
  // default deadline for requests that do not send `deadline_ms`. 0 disables
  // deadlines entirely. A client-supplied `deadline_ms` can only shorten it.
  // The same budget drives the server's socket read/write timeouts (a
  // slow-loris sender or a stalled reader is evicted within it).
  std::uint64_t request_timeout_ms = 30'000;
  // The retry_after_ms hint carried by `overloaded` error replies — the
  // client-side backoff floor (client.h honors it).
  std::uint64_t retry_after_ms = 50;
  // Concurrency limiter for expensive requests (encode/verify misses and
  // profile runs). Disabled by default (max_inflight 0); `asimt serve
  // --max-inflight N` turns it on.
  AdmissionOptions admission;
  // Serving-path observability (spans, latency matrix, slow log, flight
  // recorder). Enabled by default: the <2% overhead budget is part of the
  // feature, not a reason to ship it off.
  obsv::RecorderOptions recorder;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  // Handles one request line (no trailing newline) and returns the reply
  // line (no trailing newline). Never throws.
  //
  // When `sb` is provided the span is annotated (op, cache outcome, shard,
  // error kind, payload bytes) and its parse/cache/execute/serialize stages
  // are stamped; the request latency is recorded into the latency matrix
  // *before* returning, so a client that has the reply is already counted
  // by the `metrics` op. Without `sb` an internal builder is used so
  // socket-less callers (tests, benches) still feed the histograms.
  //
  // A request carrying `"echo_span": true` gets `"server_ns": N` spliced
  // into its reply envelope — outside `result`, so the cached payload and
  // the byte-identity contract are untouched.
  std::string handle_line(const std::string& line,
                          obsv::SpanBuilder* sb = nullptr);

  // A structured error reply (id null) minted outside handle_line — the
  // server uses this for transport-level rejections (an unterminated line
  // that outgrew the buffer budget, a shed connection, a read timeout).
  // Counted as a request + error so `stats` sees every reply the daemon ever
  // sent. `retry_after_ms` >= 0 adds the hint to the error object
  // (`overloaded` replies carry it; others pass -1).
  std::string error_reply(const char* kind, const std::string& message,
                          long long retry_after_ms = -1);

  // Counters for the `stats` op and the graceful-shutdown summary.
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

  const ShardedCache& cache() const { return cache_; }
  const ServiceOptions& options() const { return options_; }

  obsv::Recorder& recorder() { return recorder_; }
  const obsv::Recorder& recorder() const { return recorder_; }

  // Overload accounting shared with the server: the admission controller
  // counts request-level sheds here, the server counts connection sheds and
  // socket timeouts. Exposed by the `stats` and `metrics` ops.
  OverloadCounters& overload() { return overload_; }
  const OverloadCounters& overload() const { return overload_; }
  AdmissionController& admission() { return admission_; }

 private:
  std::string metrics_payload(const json::Value& request);

  ServiceOptions options_;
  ShardedCache cache_;
  obsv::Recorder recorder_;
  AdmissionController admission_;
  OverloadCounters overload_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace asimt::serve
