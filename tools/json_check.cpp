// json_check — validates that a file is well-formed JSON (default) or
// JSON-Lines (--jsonl): exit 0 when it parses, 1 with a diagnostic when it
// does not. Used by the CLI smoke tests and CI to hold `asimt --json /
// --trace / --metrics` output to an actual grammar, not a grep.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/json.h"

int main(int argc, char** argv) {
  bool jsonl = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: json_check [--jsonl] <file>\n");
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: json_check [--jsonl] <file>\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  try {
    if (jsonl) {
      const auto values = asimt::json::parse_lines(text);
      std::printf("%s: %zu JSON lines ok\n", path, values.size());
    } else {
      asimt::json::parse(text);
      std::printf("%s: JSON ok\n", path);
    }
  } catch (const asimt::json::ParseError& e) {
    std::fprintf(stderr, "json_check: %s: %s\n", path, e.what());
    return 1;
  }
  return 0;
}
