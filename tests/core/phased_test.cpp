// Tests for phased (per-loop) Transformation Table management.
#include "core/phased.h"

#include <gtest/gtest.h>

#include "core/fetch_decoder.h"

#include "isa/assembler.h"
#include "sim/cpu.h"

namespace asimt::core {
namespace {

// Two sequential hot loops — exactly the case where phase switching lets
// each loop use the full TT budget.
constexpr const char* kTwoLoops = R"(
        li      $s0, 0
        li      $s1, 40
loop_a: addiu   $s0, $s0, 1
        xor     $t0, $t0, $s0
        sll     $t1, $t0, 3
        addu    $t2, $t1, $s0
        srl     $t3, $t2, 1
        and     $t4, $t3, $t2
        or      $t5, $t4, $t0
        nor     $t6, $t5, $s0
        bne     $s0, $s1, loop_a
        li      $s0, 0
loop_b: addiu   $s0, $s0, 1
        lw      $t0, 0($a0)
        addu    $t1, $t1, $t0
        sw      $t1, 4($a0)
        sub     $t2, $t1, $s0
        slt     $t3, $t2, $s1
        xor     $t4, $t4, $t3
        addu    $t5, $t5, $t4
        bne     $s0, $s1, loop_b
        halt
)";

struct Fixture {
  isa::Program program;
  cfg::Cfg cfg;
  cfg::Profile profile;
};

Fixture run_and_profile() {
  Fixture f;
  f.program = isa::assemble(kTwoLoops);
  f.cfg = cfg::build_cfg(f.program);
  sim::Memory memory;
  memory.load_program(f.program);
  sim::Cpu cpu(memory);
  cpu.state().pc = f.program.entry();
  cpu.state().r[isa::kA0] = 0x30000;
  cfg::Profiler profiler(f.cfg);
  cpu.run(100'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
  EXPECT_TRUE(cpu.state().halted);
  f.profile = profiler.take();
  return f;
}

SelectionOptions tight_options() {
  SelectionOptions opt;
  opt.chain.block_size = 5;
  opt.tt_budget = 2;  // too small for both loops at once
  return opt;
}

TEST(Phased, FindsOnePhasePerLoop) {
  const Fixture f = run_and_profile();
  const PhasedSelection phased = select_phased(f.cfg, f.profile, tight_options());
  ASSERT_EQ(phased.phases.size(), 2u);
  EXPECT_EQ(phased.phases[0].loop_header,
            f.cfg.block_starting_at(f.program.symbol("loop_a")));
  EXPECT_EQ(phased.phases[1].loop_header,
            f.cfg.block_starting_at(f.program.symbol("loop_b")));
}

TEST(Phased, EachPhaseGetsTheFullBudget) {
  const Fixture f = run_and_profile();
  const SelectionOptions opt = tight_options();
  const PhasedSelection phased = select_phased(f.cfg, f.profile, opt);
  const SelectionResult single = select_and_encode(f.cfg, f.profile, opt);
  std::size_t phase_blocks = 0;
  for (const Phase& phase : phased.phases) {
    EXPECT_LE(phase.selection.tt_entries_used, opt.tt_budget);
    phase_blocks += phase.selection.encodings.size();
  }
  // Single config fits one loop under the tight budget; phases fit both.
  EXPECT_GT(phase_blocks, single.encodings.size());
}

TEST(Phased, BeatsSingleConfigurationUnderTightBudget) {
  const Fixture f = run_and_profile();
  const SelectionOptions opt = tight_options();
  const PhasedSelection phased = select_phased(f.cfg, f.profile, opt);
  const SelectionResult single = select_and_encode(f.cfg, f.profile, opt);
  const long long single_transitions = cfg::dynamic_transitions(
      f.cfg, f.profile, single.apply_to_text(f.cfg.text, f.cfg.text_base));
  EXPECT_LT(phased.encoded_transitions, single_transitions);
}

TEST(Phased, CountsPhaseActivations) {
  const Fixture f = run_and_profile();
  const PhasedSelection phased = select_phased(f.cfg, f.profile, tight_options());
  // Each loop is entered exactly once from outside.
  for (const Phase& phase : phased.phases) {
    EXPECT_EQ(phase.entries_from_outside, 1u) << phase.loop_header;
  }
  EXPECT_GT(phased.reprogram_instructions, 0u);
}

TEST(Phased, ReprogramCostScalesWithTableSize) {
  Phase small;
  small.selection.tt.entries.resize(1);
  small.selection.bbit.resize(1);
  Phase large;
  large.selection.tt.entries.resize(16);
  large.selection.bbit.resize(4);
  EXPECT_LT(small.reprogram_instructions_per_entry(),
            large.reprogram_instructions_per_entry());
}

TEST(Phased, ImagePatchesAllPhases) {
  const Fixture f = run_and_profile();
  const PhasedSelection phased = select_phased(f.cfg, f.profile, tight_options());
  const auto image = phased.apply_to_text(f.cfg.text, f.cfg.text_base);
  ASSERT_EQ(image.size(), f.cfg.text.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < image.size(); ++i) changed += image[i] != f.cfg.text[i];
  EXPECT_GT(changed, 0u);
  // Each phase's decoder restores its own blocks from the combined image.
  for (const Phase& phase : phased.phases) {
    FetchDecoder decoder(phase.selection.tt, phase.selection.bbit);
    for (const BlockEncoding& enc : phase.selection.encodings) {
      for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
        const std::uint32_t pc = enc.start_pc + 4 * static_cast<std::uint32_t>(i);
        EXPECT_EQ(decoder.feed(pc, image[(pc - f.cfg.text_base) / 4]),
                  enc.original_words[i]);
      }
    }
  }
}

TEST(Phased, NoLoopsMeansNoPhases) {
  const isa::Program program = isa::assemble("addiu $t0, $t0, 1\nhalt\n");
  const cfg::Cfg cfg = cfg::build_cfg(program);
  cfg::Profile profile;
  profile.block_counts.assign(cfg.blocks.size(), 1);
  const PhasedSelection phased = select_phased(cfg, profile, tight_options());
  EXPECT_TRUE(phased.phases.empty());
  EXPECT_EQ(phased.reprogram_instructions, 0u);
}

}  // namespace
}  // namespace asimt::core
