#include "profile/transition_profiler.h"

#include <algorithm>

namespace asimt::profile {

namespace {

std::atomic<TransitionProfiler*> g_current{nullptr};

}  // namespace

TransitionProfiler* current() {
  return g_current.load(std::memory_order_relaxed);
}

void set_current(TransitionProfiler* profiler) {
  g_current.store(profiler, std::memory_order_relaxed);
}

std::vector<BlockCost> top_blocks(std::vector<BlockCost> all, std::size_t n) {
  std::sort(all.begin(), all.end(), [](const BlockCost& a, const BlockCost& b) {
    if (a.transitions != b.transitions) return a.transitions > b.transitions;
    return a.index < b.index;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

TransitionProfiler::TransitionProfiler(std::uint32_t text_base,
                                       std::size_t n_words)
    : base_(text_base), n_words_(n_words), n_blocks_(0) {
  init_arrays();
}

TransitionProfiler::TransitionProfiler(const cfg::Cfg& cfg)
    : cfg_(&cfg),
      base_(cfg.text_base),
      n_words_(cfg.text.size()),
      n_blocks_(static_cast<int>(cfg.blocks.size())) {
  init_arrays();
  for (const cfg::BasicBlock& block : cfg.blocks) {
    const std::size_t first = (block.start - base_) / 4;
    for (std::size_t i = 0; i < block.instruction_count(); ++i) {
      block_of_[first + i] = block.index;
    }
  }
}

void TransitionProfiler::init_arrays() {
  exec_.assign(n_words_ + 1, 0);
  trans_.assign(n_words_ + 1, 0);
  encoded_.assign(n_words_ + 1, 0);
  block_of_.assign(n_words_ + 1, n_blocks_);  // sentinel row by default
  block_line_.assign(static_cast<std::size_t>(n_blocks_ + 1) * 32, 0);
}

void TransitionProfiler::reset() {
  std::fill(exec_.begin(), exec_.end(), 0);
  std::fill(trans_.begin(), trans_.end(), 0);
  std::fill(block_line_.begin(), block_line_.end(), 0);
  fetches_ = 0;
  prev_ = 0;
  first_ = true;
}

void TransitionProfiler::mark_encoded(std::uint32_t start_pc,
                                      std::size_t n_words) {
  for (std::size_t i = 0; i < n_words; ++i) {
    const std::size_t idx = (start_pc - base_) / 4 + i;
    if (idx < n_words_) encoded_[idx] = 1;
  }
}

long long TransitionProfiler::total_transitions() const {
  long long total = 0;
  for (const long long t : trans_) total += t;
  return total;
}

long long TransitionProfiler::encoded_transitions() const {
  long long total = 0;
  for (std::size_t i = 0; i < n_words_; ++i) {
    if (encoded_[i]) total += trans_[i];
  }
  return total;
}

long long TransitionProfiler::unencoded_transitions() const {
  long long total = 0;
  for (std::size_t i = 0; i < n_words_; ++i) {
    if (!encoded_[i]) total += trans_[i];
  }
  return total;
}

std::array<long long, 32> TransitionProfiler::per_line() const {
  std::array<long long, 32> lines{};
  for (int row = 0; row <= n_blocks_; ++row) {
    const std::uint64_t* r = &block_line_[static_cast<std::size_t>(row) * 32];
    for (unsigned b = 0; b < 32; ++b) {
      lines[b] += static_cast<long long>(r[b]);
    }
  }
  return lines;
}

std::uint64_t TransitionProfiler::block_line(int block, unsigned line) const {
  return block_line_.at(static_cast<std::size_t>(block) * 32 + line);
}

std::vector<BlockCost> TransitionProfiler::blocks() const {
  std::vector<BlockCost> out;
  if (cfg_ != nullptr) {
    out.reserve(cfg_->blocks.size() + 1);
    for (const cfg::BasicBlock& block : cfg_->blocks) {
      const std::size_t first = (block.start - base_) / 4;
      BlockCost cost;
      cost.index = block.index;
      cost.start_pc = block.start;
      cost.end_pc = block.end;
      cost.exec = exec_[first];  // leader fetch count = executions
      cost.encoded = encoded_[first] != 0;
      for (std::size_t i = 0; i < block.instruction_count(); ++i) {
        cost.transitions += trans_[first + i];
      }
      out.push_back(cost);
    }
  } else if (n_words_ > 0) {
    // Raw-stream mode: the whole image is one synthetic block.
    BlockCost cost;
    cost.index = 0;
    cost.start_pc = base_;
    cost.end_pc = base_ + 4 * static_cast<std::uint32_t>(n_words_);
    for (std::size_t i = 0; i < n_words_; ++i) {
      cost.exec += exec_[i];
      cost.transitions += trans_[i];
    }
    out.push_back(cost);
  }
  if (exec_[n_words_] != 0) {
    BlockCost overflow;
    overflow.index = -1;
    overflow.exec = exec_[n_words_];
    overflow.transitions = trans_[n_words_];
    out.push_back(overflow);
  }
  return out;
}

void TransitionProfiler::publish(telemetry::MetricsRegistry& registry) const {
  if (!telemetry::enabled()) return;
  registry.counter("profile.fetches").add(static_cast<long long>(fetches_));
  registry.counter("profile.transitions").add(total_transitions());
  registry.counter("profile.transitions.encoded").add(encoded_transitions());
  registry.counter("profile.transitions.unencoded").add(unencoded_transitions());
  if (out_of_image_transitions() != 0) {
    registry.counter("profile.transitions.out_of_image")
        .add(out_of_image_transitions());
  }
}

}  // namespace asimt::profile
