#include "baselines/opcode_remap.h"

#include <algorithm>
#include <bit>

namespace asimt::baselines {

void OpcodeRemapper::observe(std::uint32_t word) {
  const std::uint32_t opcode = word >> 26;
  if (!first_) {
    ++adjacency_[previous_opcode_][opcode];
    ++pairs_;
  }
  previous_opcode_ = opcode;
  first_ = false;
}

OpcodeRemapper::Mapping OpcodeRemapper::identity_mapping() {
  Mapping mapping{};
  for (unsigned i = 0; i < kOpcodes; ++i) mapping[i] = static_cast<std::uint8_t>(i);
  return mapping;
}

OpcodeRemapper::Mapping OpcodeRemapper::solve() const {
  // Symmetric adjacency mass (direction does not matter for transitions).
  std::array<std::array<std::uint64_t, kOpcodes>, kOpcodes> weight{};
  std::array<std::uint64_t, kOpcodes> mass{};
  for (unsigned a = 0; a < kOpcodes; ++a) {
    for (unsigned b = 0; b < kOpcodes; ++b) {
      weight[a][b] = adjacency_[a][b] + adjacency_[b][a];
      mass[a] += adjacency_[a][b] + adjacency_[b][a];
    }
  }

  std::array<unsigned, kOpcodes> order{};
  for (unsigned i = 0; i < kOpcodes; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](unsigned a, unsigned b) { return mass[a] > mass[b]; });

  Mapping mapping{};
  std::array<bool, kOpcodes> code_used{};
  std::array<bool, kOpcodes> placed{};
  for (unsigned rank = 0; rank < kOpcodes; ++rank) {
    const unsigned opcode = order[rank];
    unsigned best_code = 0;
    std::uint64_t best_cost = ~0ull;
    for (unsigned code = 0; code < kOpcodes; ++code) {
      if (code_used[code]) continue;
      std::uint64_t cost = 0;
      for (unsigned other = 0; other < kOpcodes; ++other) {
        if (!placed[other] || weight[opcode][other] == 0) continue;
        cost += weight[opcode][other] *
                static_cast<std::uint64_t>(std::popcount(code ^ mapping[other]));
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_code = code;
      }
    }
    mapping[opcode] = static_cast<std::uint8_t>(best_code);
    code_used[best_code] = true;
    placed[opcode] = true;
  }
  return mapping;
}

long long OpcodeRemapper::field_transitions(const Mapping& mapping) const {
  long long total = 0;
  for (unsigned a = 0; a < kOpcodes; ++a) {
    for (unsigned b = 0; b < kOpcodes; ++b) {
      if (adjacency_[a][b] == 0) continue;
      total += static_cast<long long>(adjacency_[a][b]) *
               std::popcount(static_cast<unsigned>(mapping[a] ^ mapping[b]));
    }
  }
  return total;
}

}  // namespace asimt::baselines
