// Socket-level integration tests for the daemon: request/reply over a real
// unix socket, pipelining, concurrent clients (TSan lane), transport-level
// rejection, stale-socket takeover, and the graceful drain contract.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "telemetry/json.h"

namespace asimt::serve {
namespace {

const char kProgram[] =
    ".text\\nstart:\\n  li $t0, 9\\nloop:\\n  addiu $t0, $t0, -1\\n"
    "  bnez $t0, loop\\n  halt\\n";

std::string encode_request(int id) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"encode\",\"text\":\"" + std::string(kProgram) +
         "\",\"k\":5}";
}

// A unique abstract-enough socket path per test (unix sockets cap at ~100
// chars, so /tmp, not the build tree).
std::string test_socket_path(const char* tag) {
  return "/tmp/asimt_test_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

// Runs a server on its own thread for the duration of one test.
class ServerFixture {
 public:
  explicit ServerFixture(const char* tag, ServeOptions options = {}) {
    options.socket_path = test_socket_path(tag);
    server_ = std::make_unique<Server>(std::move(options));
    started_ = server_->start();
    if (started_) {
      thread_ = std::thread([this] { connections_ = server_->run(); });
    }
  }

  ~ServerFixture() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_->notify_stop();
      thread_.join();
    }
  }

  bool started() const { return started_; }
  Server& server() { return *server_; }
  const std::string& socket_path() const {
    return server_->options().socket_path;
  }
  std::uint64_t connections() const { return connections_; }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
  bool started_ = false;
  std::uint64_t connections_ = 0;
};

TEST(Server, AnswersOverTheSocket) {
  ServerFixture fixture("basic");
  ASSERT_TRUE(fixture.started()) << fixture.server().error();
  Client client;
  ASSERT_TRUE(client.connect(fixture.socket_path())) << client.error();
  const auto reply = client.roundtrip("{\"id\":1,\"op\":\"ping\"}");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}");
}

TEST(Server, PipelinedRequestsReplyInOrder) {
  ServerFixture fixture("pipeline");
  ASSERT_TRUE(fixture.started()) << fixture.server().error();
  Client client;
  ASSERT_TRUE(client.connect(fixture.socket_path()));
  // Send a burst without reading, then collect: replies must come back in
  // request order (the FIFO contract the loadgen's latency matching needs).
  for (int id = 0; id < 20; ++id) {
    ASSERT_TRUE(client.send_line(encode_request(id)));
  }
  for (int id = 0; id < 20; ++id) {
    const auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(json::parse(*reply).at("id").as_int(), id);
  }
}

TEST(Server, MalformedLineKeepsTheConnectionAlive) {
  ServerFixture fixture("malformed");
  ASSERT_TRUE(fixture.started()) << fixture.server().error();
  Client client;
  ASSERT_TRUE(client.connect(fixture.socket_path()));
  const auto error_reply = client.roundtrip("{{{{ definitely not json");
  ASSERT_TRUE(error_reply.has_value());
  EXPECT_FALSE(json::parse(*error_reply).at("ok").as_bool());
  // The same connection still serves the next request.
  const auto ok_reply = client.roundtrip("{\"id\":2,\"op\":\"ping\"}");
  ASSERT_TRUE(ok_reply.has_value());
  EXPECT_TRUE(json::parse(*ok_reply).at("ok").as_bool());
}

TEST(Server, OverlongLineIsRejectedAndStreamResynchronizes) {
  ServeOptions options;
  options.service.max_text_bytes = 1024;  // tiny budget to trip the guard
  ServerFixture fixture("overlong", options);
  ASSERT_TRUE(fixture.started()) << fixture.server().error();
  Client client;
  ASSERT_TRUE(client.connect(fixture.socket_path()));
  // One gigantic unterminated line, eventually newline-terminated.
  const std::string huge(300000, 'x');
  ASSERT_TRUE(client.send_line(huge));
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  const json::Value parsed = json::parse(*reply);
  EXPECT_FALSE(parsed.at("ok").as_bool());
  EXPECT_EQ(parsed.at("error").at("kind").as_string(), "bad_request");
  // After resync the connection behaves normally.
  const auto ok_reply = client.roundtrip("{\"id\":3,\"op\":\"ping\"}");
  ASSERT_TRUE(ok_reply.has_value());
  EXPECT_TRUE(json::parse(*ok_reply).at("ok").as_bool());
}

TEST(Server, ConcurrentClientsHammerOneCache) {
  ServerFixture fixture("hammer");
  ASSERT_TRUE(fixture.started()) << fixture.server().error();
  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  std::vector<std::string> first_replies(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.connect(fixture.socket_path())) {
        mismatches.fetch_add(1000);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        // Identical request from every client: all replies must carry
        // byte-identical results whether they hit or filled the cache.
        const auto reply = client.roundtrip(encode_request(1));
        if (!reply) {
          mismatches.fetch_add(100);
          return;
        }
        if (first_replies[c].empty()) {
          first_replies[c] = *reply;
        } else if (*reply != first_replies[c]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(first_replies[c], first_replies[0]);
  }
  const CacheStats stats = fixture.server().service().cache().stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kClients) * kRequests);
  // Exactly one cold encode is resident; every other request hit it.
  EXPECT_EQ(stats.entries, 1u);
}

TEST(Server, GracefulDrainAnswersInFlightThenUnlinksSocket) {
  ServerFixture fixture("drain");
  ASSERT_TRUE(fixture.started()) << fixture.server().error();
  Client client;
  ASSERT_TRUE(client.connect(fixture.socket_path()));
  // A first roundtrip guarantees the connection is accepted (not just queued
  // in the listen backlog) before the stop request races the accept loop.
  ASSERT_TRUE(client.roundtrip("{\"id\":0,\"op\":\"ping\"}").has_value());
  ASSERT_TRUE(client.send_line(encode_request(1)));
  fixture.server().notify_stop();
  // The in-flight request still gets its reply...
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(json::parse(*reply).at("ok").as_bool());
  // ...then the drained server closes the stream and run() returns.
  EXPECT_FALSE(client.recv_line().has_value());
  fixture.stop();
  EXPECT_EQ(fixture.connections(), 1u);
  // The socket path is gone: no half-dead inode for the next start to trip on.
  Client late;
  EXPECT_FALSE(late.connect(fixture.socket_path()));
}

TEST(Server, RefusesSocketOfLiveServerButReclaimsStaleOne) {
  ServerFixture fixture("claim");
  ASSERT_TRUE(fixture.started()) << fixture.server().error();
  // A second server on the same path must refuse: the first one is alive.
  ServeOptions options;
  options.socket_path = fixture.socket_path();
  Server rival(options);
  EXPECT_FALSE(rival.start());
  EXPECT_NE(rival.error().find("already listening"), std::string::npos);
  fixture.stop();

  // A stale socket file (crashed daemon) is reclaimed silently.
  const std::string stale = test_socket_path("stale");
  {
    ServeOptions first;
    first.socket_path = stale;
    Server crashed(first);
    ASSERT_TRUE(crashed.start());
    // Destroyed without run(): the destructor closes the fd but only run()
    // unlinks the path, so the inode stays behind exactly like a crash.
  }
  ServeOptions second;
  second.socket_path = stale;
  Server reclaimer(second);
  EXPECT_TRUE(reclaimer.start()) << reclaimer.error();
  ::unlink(stale.c_str());
}

TEST(Server, HalfOpenClientStillReceivesItsReplies) {
  // The half-open pattern: a client pipelines its whole batch, SHUT_WRs to
  // say "no more requests", and must still receive every reply before the
  // server closes — EOF on the read side is end-of-requests, not abort.
  ServerFixture fixture("halfopen");
  ASSERT_TRUE(fixture.started()) << fixture.server().error();
  Client client;
  ASSERT_TRUE(client.connect(fixture.socket_path()));
  for (int id = 0; id < 5; ++id) {
    ASSERT_TRUE(client.send_line(encode_request(id)));
  }
  ASSERT_TRUE(client.shutdown_write()) << client.error();
  client.set_io_timeout_ms(10'000);
  for (int id = 0; id < 5; ++id) {
    const auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value()) << client.error();
    EXPECT_EQ(json::parse(*reply).at("id").as_int(), id);
    EXPECT_TRUE(json::parse(*reply).at("ok").as_bool());
  }
  // All requests answered, read side saw EOF: the server closes cleanly.
  std::string line;
  EXPECT_EQ(client.recv_line_wait(line, 10'000), Client::LineResult::kClosed);
}

TEST(Server, MaxConnsShedsAtTheDoorWithAStructuredReply) {
  ServeOptions options;
  options.max_conns = 1;
  ServerFixture fixture("shed", options);
  ASSERT_TRUE(fixture.started()) << fixture.server().error();

  Client occupant;
  ASSERT_TRUE(occupant.connect(fixture.socket_path()));
  // Roundtrip proves the occupant's handler thread is live before the
  // second connection arrives.
  ASSERT_TRUE(occupant.roundtrip("{\"id\":1,\"op\":\"ping\"}").has_value());

  Client shed;
  ASSERT_TRUE(shed.connect(fixture.socket_path()));
  shed.set_io_timeout_ms(5'000);
  const auto reply = shed.recv_line();
  ASSERT_TRUE(reply.has_value()) << shed.error();
  const json::Value parsed = json::parse(*reply);
  EXPECT_FALSE(parsed.at("ok").as_bool());
  EXPECT_EQ(parsed.at("error").at("kind").as_string(), "overloaded");
  EXPECT_GT(parsed.at("error").at("retry_after_ms").as_int(), 0);
  // Shed means *closed*, not parked in a queue.
  std::string line;
  EXPECT_EQ(shed.recv_line_wait(line, 5'000), Client::LineResult::kClosed);
  EXPECT_EQ(
      fixture.server().service().overload().shed_connections.load(), 1u);

  // Capacity freed is capacity usable: once the occupant leaves, a new
  // client is admitted (the accept loop reaps before counting).
  occupant.close();
  bool admitted = false;
  for (int attempt = 0; attempt < 200 && !admitted; ++attempt) {
    Client retry;
    if (retry.connect(fixture.socket_path())) {
      retry.set_io_timeout_ms(1'000);
      const auto pong = retry.roundtrip("{\"id\":2,\"op\":\"ping\"}");
      admitted = pong.has_value() &&
                 pong->find("\"ok\":true") != std::string::npos;
    }
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST(Server, SlowLorisReaderIsEvictedWithinTheBudget) {
  ServeOptions options;
  options.service.request_timeout_ms = 150;
  ServerFixture fixture("loris", options);
  ASSERT_TRUE(fixture.started()) << fixture.server().error();

  Client client;
  ASSERT_TRUE(client.connect(fixture.socket_path()));
  client.set_io_timeout_ms(10'000);
  // An *idle* connection is never deadlined: stay silent past the budget,
  // then speak — the daemon must still answer.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(client.roundtrip("{\"id\":1,\"op\":\"ping\"}").has_value());

  // Now the loris shape: start a request line and never finish it. The
  // eviction must land within the budget (plus scheduling slack), with one
  // structured timeout reply before the close.
  const char partial[] = "{\"id\":2,\"op\":\"enc";
  ASSERT_GT(::send(client.fd(), partial, sizeof(partial) - 1, 0), 0);
  const auto before = std::chrono::steady_clock::now();
  const auto reply = client.recv_line();
  const auto waited = std::chrono::steady_clock::now() - before;
  ASSERT_TRUE(reply.has_value()) << client.error();
  const json::Value parsed = json::parse(*reply);
  EXPECT_FALSE(parsed.at("ok").as_bool());
  EXPECT_EQ(parsed.at("error").at("kind").as_string(), "timeout");
  EXPECT_LT(waited, std::chrono::seconds(5));
  std::string line;
  EXPECT_EQ(client.recv_line_wait(line, 5'000), Client::LineResult::kClosed);
  EXPECT_EQ(fixture.server().service().overload().read_timeouts.load(), 1u);
}

}  // namespace
}  // namespace asimt::serve
