// Verifies the theoretical framework of §5 against the paper's own tables:
// Figure 2 (k=3 code), Figure 3 (TTN/RTN/improvement), Figure 4 (k=5 code
// under the 8-transform subset), and the §5.2 minimal-subset analysis.
#include "core/block_code.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "bitstream/bitseq.h"

namespace asimt::core {
namespace {

using bits::BitSeq;

std::uint32_t word_from_figure(const char* figure) {
  const BitSeq seq = BitSeq::from_figure_string(figure);
  return static_cast<std::uint32_t>(seq.to_word(seq.size()));
}

TEST(DecodeBlock, PaperWorkedExample010) {
  // §5.1: block word 010 is restored from code word 000 via τ(x,y) = ~y.
  const std::uint32_t code = word_from_figure("000");
  const std::uint32_t word = word_from_figure("010");
  EXPECT_EQ(decode_block(kNotHistory, code, 3), word);
}

TEST(DecodeBlock, PaperWorkedExample011) {
  // §5.1: 011 admits no 0-transition code; identity keeps it at 1 transition.
  const std::uint32_t word = word_from_figure("011");
  EXPECT_EQ(decode_block(kIdentity, word, 3), word);
  // 111 cannot produce 011: the first equation x0 = x~0 is violated.
  for (Transform t : kAllTransforms) {
    EXPECT_NE(decode_block(t, word_from_figure("111"), 3), word);
  }
}

TEST(DecodeBlock, FirstBitAlwaysPreserved) {
  for (unsigned tt = 0; tt < 16; ++tt) {
    for (std::uint32_t code = 0; code < 32; ++code) {
      EXPECT_EQ(decode_block(Transform{tt}, code, 5) & 1u, code & 1u);
    }
  }
}

TEST(DecodeBlockOverlapped, UsesEncodedOverlapBitAsHistory) {
  // With the overlap bit stored as 1 but original 0, the first recurrence
  // instance must see history = 1 (the ENCODED value, §6).
  // τ = ~y: x1 = ~(stored overlap) = 0.
  const std::uint32_t code = 0b01;  // stored: overlap=1, next=0
  const std::uint32_t word = decode_block_overlapped(kNotHistory, code, 0, 2);
  EXPECT_EQ(word & 1u, 0u);         // bit 0 = original overlap value
  EXPECT_EQ((word >> 1) & 1u, 0u);  // ~1 = 0
  // Same stored bits under chain-initial semantics would give ~? — the
  // overlapped variant must differ when stored != original:
  const std::uint32_t chain = decode_block(kNotHistory, code, 2);
  EXPECT_EQ(chain & 1u, 1u);  // chain-initial: first bit = stored bit
}

TEST(DecodeBlockOverlapped, MatchesChainInitialWhenOverlapBitAgrees) {
  // When the stored overlap bit equals the original, both semantics agree.
  for (unsigned tt = 0; tt < 16; ++tt) {
    for (std::uint32_t code = 0; code < 64; ++code) {
      const int first = static_cast<int>(code & 1u);
      EXPECT_EQ(decode_block(Transform{tt}, code, 6),
                decode_block_overlapped(Transform{tt}, code, first, 6));
    }
  }
}

// ---------------------------------------------------------------------------
// Figure 3: TTN / RTN / improvement for block sizes 2..7.
// ---------------------------------------------------------------------------

struct Fig3Row {
  int k;
  long long ttn;
  long long rtn;
  double improvement;
};

class Fig3Test : public ::testing::TestWithParam<Fig3Row> {};

TEST_P(Fig3Test, MatchesExhaustiveSolve) {
  const Fig3Row row = GetParam();
  const BlockCode code = solve_block_code(row.k);
  EXPECT_EQ(code.ttn(), row.ttn);
  EXPECT_EQ(code.rtn(), row.rtn);
  EXPECT_NEAR(code.improvement_percent(), row.improvement, 0.05);
}

// k=2..5 match the paper exactly. k=6: the paper prints 320/180 but the
// exhaustive count over all 2^6 words is 160/90 (same 43.8% — the printed
// row is scaled x2). k=7: the paper prints RTN=234 (39.1%); the per-word
// exhaustive optimum sums to 236 (38.5%). See EXPERIMENTS.md.
INSTANTIATE_TEST_SUITE_P(
    PaperFigure3, Fig3Test,
    ::testing::Values(Fig3Row{2, 2, 0, 100.0}, Fig3Row{3, 8, 2, 75.0},
                      Fig3Row{4, 24, 10, 58.3}, Fig3Row{5, 64, 32, 50.0},
                      Fig3Row{6, 160, 90, 43.8}, Fig3Row{7, 384, 236, 38.5}),
    [](const auto& info) { return "k" + std::to_string(info.param.k); });

TEST(BlockCode, TtnIsClosedForm) {
  // TTN = sum of transitions over all k-bit words = (k-1) * 2^(k-1).
  for (int k = 2; k <= 10; ++k) {
    const BlockCode code = solve_block_code(k);
    EXPECT_EQ(code.ttn(), static_cast<long long>(k - 1) * (1LL << (k - 1)));
  }
}

// ---------------------------------------------------------------------------
// Figure 2: the complete k=3 table.
// ---------------------------------------------------------------------------

TEST(BlockCode, Figure2Table) {
  const BlockCode code = solve_block_code(3);
  struct Row {
    const char* word;
    const char* expect_code;
    int tx;
    int tc;
  };
  // Code transition counts are forced by optimality; the code words
  // themselves are forced except where multiple optima exist — these eight
  // match the paper's table exactly under our deterministic tie-break.
  const Row rows[] = {
      {"000", "000", 0, 0}, {"001", "111", 1, 0}, {"010", "000", 2, 0},
      {"011", "011", 1, 1}, {"100", "100", 1, 1}, {"101", "111", 2, 0},
      {"110", "000", 1, 0}, {"111", "111", 0, 0},
  };
  for (const Row& row : rows) {
    const CodeAssignment& e = code.entries[word_from_figure(row.word)];
    EXPECT_EQ(e.word_transitions, row.tx) << row.word;
    EXPECT_EQ(e.code_transitions, row.tc) << row.word;
    EXPECT_EQ(e.code, word_from_figure(row.expect_code)) << row.word;
    EXPECT_EQ(decode_block(e.tau, e.code, 3), e.word) << row.word;
  }
}

// ---------------------------------------------------------------------------
// Figure 4: k=5 under the restricted 8-transform set. The paper prints the
// first half (words starting with figure-leftmost 0); we check every row's
// transition counts and a sample of exact (code, τ) pairs.
// ---------------------------------------------------------------------------

TEST(BlockCode, Figure4TransitionCounts) {
  const BlockCode code =
      solve_block_code(5, std::span<const Transform>{kPaperSubset});
  struct Row {
    const char* word;
    int tx, tc;
  };
  const Row rows[] = {
      {"00000", 0, 0}, {"00001", 1, 0}, {"00010", 2, 1}, {"00011", 1, 1},
      {"00100", 2, 2}, {"00101", 3, 1}, {"00110", 2, 1}, {"00111", 1, 1},
      {"01000", 2, 1}, {"01001", 3, 1}, {"01010", 4, 0}, {"01011", 3, 1},
      {"01100", 2, 2}, {"01101", 3, 2}, {"01110", 2, 1}, {"01111", 1, 1},
  };
  for (const Row& row : rows) {
    const CodeAssignment& e = code.entries[word_from_figure(row.word)];
    EXPECT_EQ(e.word_transitions, row.tx) << row.word;
    EXPECT_EQ(e.code_transitions, row.tc) << row.word;
  }
}

TEST(BlockCode, Figure4ExactAssignments) {
  const BlockCode code =
      solve_block_code(5, std::span<const Transform>{kPaperSubset});
  struct Row {
    const char* word;
    const char* expect_code;
    Transform tau;
  };
  // Rows of Fig. 4 whose optimal code word is unique.
  const Row rows[] = {
      {"00001", "11111", kInvert},
      {"01010", "00000", kNotHistory},
      {"01001", "00111", kNor},
  };
  for (const Row& row : rows) {
    const CodeAssignment& e = code.entries[word_from_figure(row.word)];
    EXPECT_EQ(e.code, word_from_figure(row.expect_code)) << row.word;
    EXPECT_EQ(decode_block(e.tau, e.code, 5), e.word);
  }
}

TEST(BlockCode, Figure4SymmetryBetweenHalves) {
  // §5.2: inverting all bits maps each row of the shown half onto the hidden
  // half with identical transition counts.
  const BlockCode code =
      solve_block_code(5, std::span<const Transform>{kPaperSubset});
  for (std::uint32_t word = 0; word < 32; ++word) {
    const std::uint32_t mirrored = ~word & 0x1Fu;
    EXPECT_EQ(code.entries[word].code_transitions,
              code.entries[mirrored].code_transitions);
    EXPECT_EQ(code.entries[word].word_transitions,
              code.entries[mirrored].word_transitions);
  }
}

// ---------------------------------------------------------------------------
// §5.2: restricted transform sets.
// ---------------------------------------------------------------------------

TEST(SubsetOptimality, PaperSubsetOptimalUpToSeven) {
  for (int k = 2; k <= 7; ++k) {
    EXPECT_TRUE(subset_is_optimal(k, std::span<const Transform>{kPaperSubset}))
        << "k=" << k;
  }
}

TEST(SubsetOptimality, InvertibleFourIsNotEnoughForAllSizes) {
  // The four transforms invertible in x handle small blocks (XNOR covers the
  // 010 case at k=3) but cannot stay optimal across all practical sizes —
  // the minimal optimal subset has six members.
  bool optimal_everywhere = true;
  for (int k = 2; k <= 7; ++k) {
    optimal_everywhere = optimal_everywhere &&
        subset_is_optimal(k, std::span<const Transform>{kInvertibleSubset});
  }
  EXPECT_FALSE(optimal_everywhere);
}

TEST(SubsetOptimality, IdentityAloneSavesNothing) {
  const std::array<Transform, 1> identity_only = {kIdentity};
  const BlockCode code =
      solve_block_code(4, std::span<const Transform>{identity_only});
  EXPECT_EQ(code.rtn(), code.ttn());
}

TEST(SubsetOptimality, MinimalOptimalSubsetIsSizeSixAndUnique) {
  // Repro finding (documented in EXPERIMENTS.md): the paper claims a unique
  // optimal subset of size 8, but the true minimal optimal subset has SIX
  // members — {x, ~x, xor, xnor, nor, nand} — and is unique at that size.
  EXPECT_TRUE(optimal_subsets_of_size(5, 7).empty());
  const auto six = optimal_subsets_of_size(6, 7);
  ASSERT_EQ(six.size(), 1u);
  const std::uint32_t expected = (1u << kIdentity.truth_table()) |
                                 (1u << kInvert.truth_table()) |
                                 (1u << kXor.truth_table()) |
                                 (1u << kXnor.truth_table()) |
                                 (1u << kNor.truth_table()) |
                                 (1u << kNand.truth_table());
  EXPECT_EQ(six[0], expected);
}

TEST(SubsetOptimality, EveryOptimalSubsetContainsTheCoreSix) {
  const auto six = optimal_subsets_of_size(6, 7);
  ASSERT_EQ(six.size(), 1u);
  const std::uint32_t core = six[0];
  for (int size = 7; size <= 9; ++size) {
    const auto winners = optimal_subsets_of_size(size, 7);
    // Supersets of the core six: C(10, size-6) of them.
    const int remaining = 16 - 6;
    long long expected_count = 1;
    for (int i = 0; i < size - 6; ++i) expected_count = expected_count * (remaining - i) / (i + 1);
    EXPECT_EQ(static_cast<long long>(winners.size()), expected_count) << size;
    for (std::uint32_t mask : winners) {
      EXPECT_EQ(mask & core, core);
    }
  }
}

TEST(SubsetOptimality, CoreSixStaysOptimalWellBeyondSeven) {
  // §5.2 proves optimality "for all blocks of size up to seven" and worries
  // the property weakens for longer blocks; exhaustively it holds at least
  // through k = 10 (and through 12 in the subset_uniqueness bench).
  static constexpr std::array<Transform, 6> six = {kIdentity, kInvert, kXor,
                                                   kXnor,     kNor,    kNand};
  for (int k = 8; k <= 10; ++k) {
    EXPECT_TRUE(subset_is_optimal(k, std::span<const Transform>{six})) << k;
  }
}

TEST(SubsetOptimality, PaperEightIsAmongOptimalEights) {
  std::uint32_t paper_mask = 0;
  for (Transform t : kPaperSubset) paper_mask |= 1u << t.truth_table();
  const auto winners = optimal_subsets_of_size(8, 7);
  EXPECT_NE(std::find(winners.begin(), winners.end(), paper_mask), winners.end());
}

TEST(MinCodeTransitions, NeverWorseThanOriginal) {
  // The identity transform guarantees the worst case never regresses (§5.1).
  for (int k = 2; k <= 7; ++k) {
    for (std::uint32_t word = 0; word < (1u << k); ++word) {
      EXPECT_LE(min_code_transitions(word, k,
                                     std::span<const Transform>{kPaperSubset}),
                bits::word_transitions(word, k));
    }
  }
}

TEST(SolveBlockCode, DecodesRoundTripForAllEntries) {
  for (int k = 2; k <= 7; ++k) {
    const BlockCode code = solve_block_code(k);
    for (const CodeAssignment& e : code.entries) {
      EXPECT_EQ(decode_block(e.tau, e.code, k), e.word);
      EXPECT_EQ(e.code_transitions, bits::word_transitions(e.code, k));
      EXPECT_EQ(e.word_transitions, bits::word_transitions(e.word, k));
    }
  }
}

TEST(SolveBlockCode, RejectsBadBlockSizes) {
  EXPECT_THROW(solve_block_code(0), std::invalid_argument);
  EXPECT_THROW(solve_block_code(21), std::invalid_argument);
}

}  // namespace
}  // namespace asimt::core
