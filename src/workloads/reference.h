// Host-side reference implementations of the six workloads.
//
// Operation order deliberately mirrors the assembly kernels so float results
// match the simulator closely (bit-exactly when the compiler does not
// contract multiply-add). Also reused directly by tests and examples.
#pragma once

#include <cstdint>
#include <vector>

namespace asimt::workloads {

// Deterministic input generator shared by init() and the references.
class Lcg {
 public:
  explicit Lcg(std::uint32_t seed) : state_(seed) {}

  std::uint32_t next_u32() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }

  // Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
  }

 private:
  std::uint32_t state_;
};

// C = A x B, n x n row-major.
void ref_mmul(int n, const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c);

// In-place Gauss-Seidel successive over-relaxation sweeps; the interior
// update is u += (omega/4) * (neighbors - 4u) with omega/4 = 0.375.
void ref_sor(int n, int iters, std::vector<float>& u);

// Extrapolated Jacobi with omega = 1.25; ping-pongs between u and v.
// Returns a reference to the buffer holding the final iterate.
std::vector<float>& ref_ej(int n, int iters, std::vector<float>& u,
                           std::vector<float>& v);

// Radix-2 DIT FFT, n a power of two; twiddles w[j] = exp(-2*pi*i*j/n).
void ref_fft(int n, std::vector<float>& re, std::vector<float>& im);

// Bit-reversal permutation table for an n-point FFT.
std::vector<std::uint32_t> fft_bit_reverse_table(int n);
// Twiddle factor tables (cos / sin of -2*pi*j/n for j < n/2).
void fft_twiddles(int n, std::vector<float>& wre, std::vector<float>& wim);

// Thomas algorithm: solves the tridiagonal system (a, b, c) x = d without
// modifying the inputs (works on scratch copies of b and d like the kernel).
void ref_tri(int n, const std::vector<float>& a, const std::vector<float>& b,
             const std::vector<float>& c, const std::vector<float>& d,
             std::vector<float>& x);

// In-place Doolittle LU decomposition without pivoting.
void ref_lu(int n, std::vector<float>& matrix);

}  // namespace asimt::workloads
