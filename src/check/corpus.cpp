#include "check/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace asimt::check {
namespace {

// Reads the whole file; false (with errno-free diagnostics kept simple)
// when the file cannot be opened or a read fails mid-way.
bool slurp(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  out = buffer.str();
  return true;
}

// The case text with comment and blank lines (and CR line endings) removed:
// what remains is exactly what parse_case consumed, comparable against the
// canonical serialize_case form.
std::string strip_comments(std::string_view text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view row = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!row.empty() && row.back() == '\r') row.remove_suffix(1);
    if (row.empty() || row.front() == '#') continue;
    out.append(row);
    out.push_back('\n');
  }
  return out;
}

}  // namespace

CorpusReport replay_corpus_dir(const std::string& dir,
                               const OracleHooks& hooks) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    throw std::runtime_error("corpus replay: cannot enumerate '" + dir +
                             "': " + ec.message());
  }
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  CorpusReport report;
  for (const std::filesystem::path& path : paths) {
    CorpusFileResult result;
    result.file = path.string();
    std::string text;
    if (!slurp(path, text)) {
      result.error = result.file + ": read error: cannot open or read file";
      report.files.push_back(std::move(result));
      continue;
    }
    FuzzCase c;
    try {
      c = parse_case(text);
    } catch (const std::exception& e) {
      result.error = result.file + ": parse error: " + e.what();
      report.files.push_back(std::move(result));
      continue;
    }
    result.parsed = true;
    result.oracle = c.oracle;
    // A checked-in reproducer must stay canonical modulo comments: a hand
    // edit that leaves stale or duplicate fields parses (last key wins), so
    // the text could claim one case while the replay exercises another.
    if (strip_comments(text) != serialize_case(c)) {
      result.error = result.file + ": round-trip drift: file is not the "
                                   "canonical form of the case it encodes "
                                   "(re-serialize with `asimt fuzz` tooling)";
      report.files.push_back(std::move(result));
      continue;
    }
    if (std::optional<std::string> failure = run_case(c, hooks)) {
      result.error = result.file + ": oracle " +
                     std::string(oracle_name(c.oracle)) +
                     " failed: " + *failure;
    }
    report.files.push_back(std::move(result));
  }
  return report;
}

}  // namespace asimt::check
