#include "check/fuzz_case.h"

#include <charconv>
#include <stdexcept>

namespace asimt::check {

namespace {

constexpr std::string_view kMagic = "asimt-fuzz-case v1";

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("fuzz case line " + std::to_string(line_no) + ": " +
                           what);
}

std::string_view strategy_name(core::ChainStrategy s) {
  return s == core::ChainStrategy::kGreedy ? "greedy" : "dp";
}

}  // namespace

std::span<const core::Transform> FuzzCase::transform_span() const {
  switch (transforms) {
    case TransformSet::kPaper: return core::kPaperSubset;
    case TransformSet::kInvertible: return core::kInvertibleSubset;
    case TransformSet::kAll: return core::kAllTransforms;
  }
  return core::kPaperSubset;
}

std::string_view oracle_name(Oracle oracle) {
  switch (oracle) {
    case Oracle::kRoundTrip: return "roundtrip";
    case Oracle::kCost: return "cost";
    case Oracle::kReplay: return "replay";
    case Oracle::kJson: return "json";
    case Oracle::kBitplane: return "bitplane";
  }
  return "?";
}

std::string_view transform_set_name(TransformSet set) {
  switch (set) {
    case TransformSet::kPaper: return "paper";
    case TransformSet::kInvertible: return "invertible";
    case TransformSet::kAll: return "all";
  }
  return "?";
}

std::string serialize_case(const FuzzCase& c) {
  std::string out(kMagic);
  out += "\noracle ";
  out += oracle_name(c.oracle);
  out += '\n';
  if (c.oracle == Oracle::kJson) {
    out += "json ";
    out += c.json_text;
    out += '\n';
    return out;
  }
  if (c.oracle == Oracle::kRoundTrip) {
    out += "strategy ";
    out += strategy_name(c.strategy);
    out += '\n';
  }
  out += "k " + std::to_string(c.block_size) + '\n';
  out += "transforms ";
  out += transform_set_name(c.transforms);
  out += '\n';
  if (c.oracle == Oracle::kReplay) {
    out += "words";
    char buf[16];
    for (const std::uint32_t w : c.words) {
      auto res = std::to_chars(buf, buf + sizeof buf, w, 16);
      out += ' ';
      out.append(buf, res.ptr);
    }
    out += '\n';
  } else {
    out += "line " + c.line.to_stream_string() + '\n';
  }
  return out;
}

FuzzCase parse_case(std::string_view text) {
  FuzzCase c;
  bool saw_magic = false, saw_oracle = false;
  bool saw_line = false, saw_words = false, saw_json = false;
  std::size_t pos = 0, line_no = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view row = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!row.empty() && row.back() == '\r') row.remove_suffix(1);
    if (row.empty() || row.front() == '#') {
      if (pos > text.size()) break;
      continue;
    }
    if (!saw_magic) {
      if (row != kMagic) fail(line_no, "missing magic header");
      saw_magic = true;
      continue;
    }
    const std::size_t sp = row.find(' ');
    const std::string_view key = row.substr(0, sp);
    const std::string_view value =
        sp == std::string_view::npos ? std::string_view() : row.substr(sp + 1);
    if (key == "oracle") {
      saw_oracle = true;
      if (value == "roundtrip") c.oracle = Oracle::kRoundTrip;
      else if (value == "cost") c.oracle = Oracle::kCost;
      else if (value == "replay") c.oracle = Oracle::kReplay;
      else if (value == "json") c.oracle = Oracle::kJson;
      else if (value == "bitplane") c.oracle = Oracle::kBitplane;
      else fail(line_no, "unknown oracle '" + std::string(value) + "'");
    } else if (key == "strategy") {
      if (value == "greedy") c.strategy = core::ChainStrategy::kGreedy;
      else if (value == "dp") c.strategy = core::ChainStrategy::kOptimalDp;
      else fail(line_no, "unknown strategy '" + std::string(value) + "'");
    } else if (key == "k") {
      int k = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), k);
      if (ec != std::errc() || ptr != value.data() + value.size() || k < 2 ||
          k > 16) {
        fail(line_no, "k needs an integer in [2, 16]");
      }
      c.block_size = k;
    } else if (key == "transforms") {
      if (value == "paper") c.transforms = TransformSet::kPaper;
      else if (value == "invertible") c.transforms = TransformSet::kInvertible;
      else if (value == "all") c.transforms = TransformSet::kAll;
      else fail(line_no, "unknown transform set '" + std::string(value) + "'");
    } else if (key == "line") {
      try {
        c.line = bits::BitSeq::from_stream_string(value);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
      saw_line = true;
    } else if (key == "words") {
      c.words.clear();
      std::size_t i = 0;
      while (i < value.size()) {
        while (i < value.size() && value[i] == ' ') ++i;
        if (i >= value.size()) break;
        std::size_t j = value.find(' ', i);
        if (j == std::string_view::npos) j = value.size();
        std::uint32_t w = 0;
        const auto [ptr, ec] =
            std::from_chars(value.data() + i, value.data() + j, w, 16);
        if (ec != std::errc() || ptr != value.data() + j) {
          fail(line_no, "bad hex word '" + std::string(value.substr(i, j - i)) +
                            "'");
        }
        c.words.push_back(w);
        i = j;
      }
      saw_words = true;
    } else if (key == "json") {
      c.json_text = std::string(value);
      saw_json = true;
    } else {
      fail(line_no, "unknown key '" + std::string(key) + "'");
    }
    if (pos > text.size()) break;
  }
  if (!saw_magic) fail(1, "missing magic header");
  if (!saw_oracle) fail(line_no, "missing 'oracle' key");
  if (c.oracle == Oracle::kJson && !saw_json) fail(line_no, "json oracle needs a 'json' line");
  if (c.oracle == Oracle::kReplay && !saw_words) fail(line_no, "replay oracle needs a 'words' line");
  if ((c.oracle == Oracle::kRoundTrip || c.oracle == Oracle::kCost ||
       c.oracle == Oracle::kBitplane) &&
      !saw_line) {
    fail(line_no, "oracle needs a 'line' line");
  }
  if (c.oracle == Oracle::kReplay && c.transforms == TransformSet::kAll) {
    fail(line_no, "replay oracle transforms must fit 3-bit TT indices");
  }
  return c;
}

}  // namespace asimt::check
