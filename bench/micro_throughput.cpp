// A6 — microbenchmarks on the statistical harness (src/obs/bench.h):
// tooling throughput for the encoder, decoder model, simulator, and solver,
// plus the telemetry/profiler overhead guards. The suite itself lives in
// micro_suite.cpp and is shared with `asimt bench`; this binary is the
// standalone front end the CI bench loop runs.
//
// Every run writes BENCH_micro_throughput.json (schema v2): RunManifest,
// per-bench median/MAD and seeded-bootstrap 95% CIs over warmed-up
// repetitions, and process self-metrics. `--history DIR` appends the
// artifact to the JSONL trajectory store consumed by
// `tools/benchdiff --trajectory` (docs/BENCHMARKING.md).
#include "obs/bench.h"

int main(int argc, char** argv) {
  return asimt::obs::bench_suite_cli_main(argc, argv, "micro_throughput",
                                          "BENCH_micro_throughput.json");
}
