// Fault-model unit tests: the site spaces are the addressing scheme every
// campaign report is built on, so their enumeration order is pinned here.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/hw_tables.h"
#include "fault/campaign.h"
#include "fault/fault.h"

namespace asimt::fault {
namespace {

core::TtEntry make_entry(std::uint8_t tau_seed, bool end, std::uint8_t ct) {
  core::TtEntry entry;
  for (unsigned line = 0; line < core::kBusLines; ++line) {
    entry.tau[line] = static_cast<std::uint8_t>((tau_seed + line) % 8);
  }
  entry.end = end;
  entry.ct = ct;
  return entry;
}

TEST(FaultModel, TargetNamesRoundTrip) {
  for (Target t : kAllTargets) {
    EXPECT_EQ(target_from_name(target_name(t)), t);
  }
  EXPECT_FALSE(target_from_name("tlb").has_value());
}

TEST(FaultModel, ProtectionNamesRoundTrip) {
  for (Protection p : {Protection::kNone, Protection::kParity,
                       Protection::kReencode, Protection::kBoth}) {
    EXPECT_EQ(protection_from_name(protection_name(p)), p);
  }
  EXPECT_FALSE(protection_from_name("ecc").has_value());
}

TEST(FaultModel, SiteCountsMatchTheHardwareBudget) {
  // 13-word block, 4 TT entries: the numbers the paper's hardware implies.
  EXPECT_EQ(site_count(Target::kTt, 13, 4), 4u * (32 * 3 + 1 + 5));
  EXPECT_EQ(site_count(Target::kHistory, 13, 4), 12u * 32);
  EXPECT_EQ(site_count(Target::kImage, 13, 4), 13u * 32);
  EXPECT_EQ(site_count(Target::kBus, 13, 4), 13u * 32);
  EXPECT_EQ(site_count(Target::kHistory, 0, 4), 0u);
}

TEST(FaultModel, SiteEnumerationCoversEverySiteExactlyOnce) {
  constexpr std::size_t kWords = 13, kEntries = 4;
  for (Target target : kAllTargets) {
    const std::size_t n = site_count(target, kWords, kEntries);
    std::set<std::tuple<int, std::size_t, unsigned, unsigned>> seen;
    for (std::size_t i = 0; i < n; ++i) {
      const Site s = site_at(target, kWords, kEntries, i);
      EXPECT_EQ(s.target, target);
      seen.insert({static_cast<int>(s.kind), s.index, s.line, s.bit});
    }
    EXPECT_EQ(seen.size(), n) << target_name(target);
    EXPECT_THROW(site_at(target, kWords, kEntries, n), std::out_of_range);
  }
}

TEST(FaultModel, TtSiteOrderIsEntryMajorTauFirst) {
  // Pinned forever: campaign seeds must replay identically across versions.
  const Site first = site_at(Target::kTt, 13, 4, 0);
  EXPECT_EQ(first.kind, SiteKind::kTauBit);
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(first.line, 0u);
  EXPECT_EQ(first.bit, 0u);
  const Site e_bit = site_at(Target::kTt, 13, 4, 96);
  EXPECT_EQ(e_bit.kind, SiteKind::kEBit);
  const Site ct0 = site_at(Target::kTt, 13, 4, 97);
  EXPECT_EQ(ct0.kind, SiteKind::kCtBit);
  EXPECT_EQ(ct0.bit, 0u);
  const Site next_entry = site_at(Target::kTt, 13, 4, 102);
  EXPECT_EQ(next_entry.kind, SiteKind::kTauBit);
  EXPECT_EQ(next_entry.index, 1u);
  // History sites start at fetch 1: an upset before fetch 0 is overwritten
  // by the chain-initial seed before anything reads it.
  const Site h0 = site_at(Target::kHistory, 13, 4, 0);
  EXPECT_EQ(h0.index, 1u);
  EXPECT_EQ(h0.line, 0u);
}

TEST(FaultModel, ApplyTtFaultIsItsOwnInverse) {
  core::TtConfig tt{5, {make_entry(2, false, 0), make_entry(5, true, 4)}};
  const core::TtConfig golden = tt;
  for (std::size_t i = 0; i < site_count(Target::kTt, 13, tt.entries.size());
       ++i) {
    const Site s = site_at(Target::kTt, 13, tt.entries.size(), i);
    apply_tt_fault(tt, s);
    apply_tt_fault(tt, s);  // XOR flip: applying twice restores the entry
  }
  for (std::size_t e = 0; e < tt.entries.size(); ++e) {
    for (unsigned line = 0; line < core::kBusLines; ++line) {
      EXPECT_EQ(tt.entries[e].tau[line], golden.entries[e].tau[line]);
    }
    EXPECT_EQ(tt.entries[e].end, golden.entries[e].end);
    EXPECT_EQ(tt.entries[e].ct, golden.entries[e].ct);
  }
}

TEST(FaultModel, ApplyImageFaultTogglesExactlyOneBit) {
  std::vector<std::uint32_t> words = {0x0, 0xFFFFFFFFu, 0x12345678u};
  Site s;
  s.target = Target::kImage;
  s.kind = SiteKind::kImageBit;
  s.index = 1;
  s.line = 9;
  apply_image_fault(words, s);
  EXPECT_EQ(words[1], 0xFFFFFFFFu ^ (1u << 9));
  EXPECT_EQ(words[0], 0u);
  EXPECT_EQ(words[2], 0x12345678u);
}

TEST(FaultModel, ApplyFaultRejectsMismatchedSites) {
  core::TtConfig tt{5, {make_entry(1, true, 3)}};
  std::vector<std::uint32_t> words = {1, 2};
  Site image_site;
  image_site.target = Target::kImage;
  image_site.kind = SiteKind::kImageBit;
  EXPECT_THROW(apply_tt_fault(tt, image_site), std::invalid_argument);
  Site tt_site;
  tt_site.target = Target::kTt;
  tt_site.kind = SiteKind::kTauBit;
  tt_site.index = 7;  // past the single-entry table
  EXPECT_THROW(apply_tt_fault(tt, tt_site), std::invalid_argument);
  EXPECT_THROW(apply_image_fault(words, tt_site), std::invalid_argument);
}

TEST(FaultModel, TtEntryParityCatchesEverySingleBitFlip) {
  // The protection mode's whole value rests on this: flipping ANY one of the
  // 102 wire-format bits of an entry must flip its parity.
  core::TtConfig tt{5, {make_entry(3, true, 5)}};
  const int golden = core::tt_entry_parity(tt.entries[0]);
  for (std::size_t i = 0; i < kTtBitsPerEntry; ++i) {
    core::TtConfig faulty = tt;
    apply_tt_fault(faulty, site_at(Target::kTt, 13, 1, i));
    EXPECT_NE(core::tt_entry_parity(faulty.entries[0]), golden)
        << "site " << i << " escaped the parity bit";
  }
}

}  // namespace
}  // namespace asimt::fault
