// Encoding of arbitrary-length bit streams as chains of overlapped blocks
// (paper §6, "Applying the power codes").
//
// A stream of m bits is split into blocks of `block_size` bits where each
// block shares its FIRST bit with the previous block's LAST bit (one-bit
// overlap). Each block gets its own transformation τ. The stored value of
// the overlap bit is fixed by the previous block, which couples consecutive
// block choices; the paper uses a greedy pass and reports it is within ~1% of
// optimal on random streams. This module provides both the greedy pass and
// an exact dynamic program (the coupling is only through the single stored
// overlap bit, so a 2-state DP is optimal), which the ablation benches
// compare.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bitstream/bitseq.h"
#include "core/transform.h"

namespace asimt::core {

namespace detail {
struct ChoiceTable;
}  // namespace detail

// One block of an encoded chain.
struct ChainBlock {
  std::size_t start = 0;  // index of the block's first bit (the overlap bit
                          // for every block but the first)
  int length = 0;         // bits covered, including the overlap bit
  Transform tau;          // restoring transformation for bits start+1..end
};

// A fully encoded bit stream.
struct EncodedChain {
  bits::BitSeq stored;             // what goes into instruction memory
  std::vector<ChainBlock> blocks;  // per-block transforms, in stream order
};

enum class ChainStrategy {
  kGreedy,     // paper §6: pick each block's best code left to right
  kOptimalDp,  // exact: DP over the stored value of each overlap bit
};

struct ChainOptions {
  int block_size = 5;
  std::span<const Transform> allowed = kPaperSubset;
  ChainStrategy strategy = ChainStrategy::kGreedy;
};

class ChainEncoder {
 public:
  explicit ChainEncoder(ChainOptions options);

  // Encodes `original`; the returned stored sequence has the same length.
  EncodedChain encode(const bits::BitSeq& original) const;

  // Encodes several independent streams (typically the per-bus-line vertical
  // sequences of one block), fanning the per-line τ searches out across the
  // parallel engine when the total work is large enough to amortize task
  // overhead. Result slot i always holds encode(originals[i]) bit-exactly —
  // thread count and chunking never change the output (the determinism
  // contract in docs/PARALLELISM.md).
  std::vector<EncodedChain> encode_many(
      std::span<const bits::BitSeq> originals) const;

  // Block partition for a stream of `m` bits: blocks start at multiples of
  // (block_size - 1); a final fragment shorter than 2 bits is absorbed by
  // the previous block's overlap and produces no extra block.
  static std::vector<ChainBlock> partition(std::size_t m, int block_size);

  const ChainOptions& options() const { return options_; }

 private:
  EncodedChain encode_greedy(const bits::BitSeq& original) const;
  EncodedChain encode_dp(const bits::BitSeq& original) const;

  ChainOptions options_;
  // Precomputed per-(block_size, allowed) choice tables: for every block
  // length and every original window, the winning (code, τ) under the
  // encoder's deterministic tie-break — built once, shared process-wide.
  std::shared_ptr<const detail::ChoiceTable> table_;
};

// Serial hardware-faithful decode: replays the per-bit recurrence, reloading
// the history register from the raw stored bit at every block boundary.
bits::BitSeq decode_chain(const EncodedChain& chain);

}  // namespace asimt::core
