#include "core/image.h"

#include "core/tt_format.h"

namespace asimt::core {

namespace {

constexpr std::uint32_t kMagic = 0x544D5341u;  // 'ASMT' little-endian
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    if (pos_ + 4 > bytes_.size()) throw ImageError("image truncated");
    const std::uint32_t v = static_cast<std::uint32_t>(bytes_[pos_]) |
                            (static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16) |
                            (static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  std::size_t position() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint32_t hash = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

}  // namespace

std::vector<std::uint8_t> serialize(const FirmwareImage& image) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + 4 * image.text.size() + 16 * image.tt.entries.size() +
              8 * image.bbit.size() + 4);
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(image.tt.block_size));
  put_u32(out, image.text_base);
  put_u32(out, static_cast<std::uint32_t>(image.text.size()));
  put_u32(out, static_cast<std::uint32_t>(image.tt.entries.size()));
  put_u32(out, static_cast<std::uint32_t>(image.bbit.size()));
  for (std::uint32_t word : image.text) put_u32(out, word);
  for (const TtEntry& entry : image.tt.entries) {
    for (std::uint32_t word : pack_tt_entry(entry)) put_u32(out, word);
  }
  for (const BbitEntry& entry : image.bbit) {
    put_u32(out, entry.pc);
    put_u32(out, entry.tt_index);
  }
  put_u32(out, fnv1a(out.data(), out.size()));
  return out;
}

FirmwareImage deserialize(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 32) throw ImageError("image too small");
  const std::uint32_t stored_checksum =
      static_cast<std::uint32_t>(bytes[bytes.size() - 4]) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 1]) << 24);
  if (fnv1a(bytes.data(), bytes.size() - 4) != stored_checksum) {
    throw ImageError("image checksum mismatch");
  }

  Reader reader(bytes);
  if (reader.u32() != kMagic) throw ImageError("bad image magic");
  if (reader.u32() != kVersion) throw ImageError("unsupported image version");

  FirmwareImage image;
  const std::uint32_t block_size = reader.u32();
  if (block_size < 2 || block_size > 16) throw ImageError("bad block size");
  image.tt.block_size = static_cast<int>(block_size);
  image.text_base = reader.u32();
  const std::uint32_t text_words = reader.u32();
  const std::uint32_t tt_entries = reader.u32();
  const std::uint32_t bbit_entries = reader.u32();
  const std::size_t expected =
      28 + 4ull * text_words + 16ull * tt_entries + 8ull * bbit_entries + 4;
  if (bytes.size() != expected) throw ImageError("image length mismatch");

  image.text.reserve(text_words);
  for (std::uint32_t i = 0; i < text_words; ++i) image.text.push_back(reader.u32());
  image.tt.entries.reserve(tt_entries);
  for (std::uint32_t i = 0; i < tt_entries; ++i) {
    std::array<std::uint32_t, kTtEntryWords> words{};
    for (std::uint32_t& w : words) w = reader.u32();
    image.tt.entries.push_back(unpack_tt_entry(words));
  }
  image.bbit.reserve(bbit_entries);
  for (std::uint32_t i = 0; i < bbit_entries; ++i) {
    BbitEntry entry;
    entry.pc = reader.u32();
    const std::uint32_t index = reader.u32();
    if (index >= tt_entries) throw ImageError("BBIT index out of range");
    entry.tt_index = static_cast<std::uint16_t>(index);
    image.bbit.push_back(entry);
  }
  return image;
}

}  // namespace asimt::core
