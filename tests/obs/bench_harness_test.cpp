// Tests for the measurement harness driving locally registered benchmarks:
// artifact schema, filter semantics, repetition accounting, and the
// mock-time determinism contract (two runs, same seed -> byte-identical
// statistics blocks).
#include "obs/bench.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/manifest.h"
#include "telemetry/json.h"

namespace asimt::obs {
namespace {

// Trivial registered benchmarks for the harness to chew on. Registration is
// global, so names carry a Harness prefix no real suite uses; harness tests
// filter on it to stay independent of bench/micro_suite.cpp (not linked into
// this binary anyway).
void BM_HarnessSpin(BenchContext& ctx) {
  ctx.set_items_per_iter(4);
  ctx.set_counter("answer", 42.0);
  ctx.measure([&] {
    volatile int x = 0;
    for (int i = 0; i < 100; ++i) x = x + i;
    do_not_optimize(x);
  });
}
ASIMT_BENCH(BM_HarnessSpin);

void BM_HarnessOther(BenchContext& ctx) {
  ctx.measure([] {
    volatile int x = 1;
    do_not_optimize(x);
  });
}
ASIMT_BENCH(BM_HarnessOther);

BenchOptions mock_options() {
  BenchOptions options;
  options.filter = "BM_Harness";
  options.repetitions = 6;
  options.warmup = 2;
  options.seed = 99;
  options.mock_time = true;
  options.verbose_console = false;
  return options;
}

TEST(BenchHarnessTest, ArtifactCarriesSchemaManifestAndStats) {
  const json::Value doc = run_benches(mock_options(), "harness_test");
  EXPECT_EQ(doc.at("schema_version").as_int(), kBenchSchemaVersion);
  EXPECT_EQ(doc.at("bench").as_string(), "harness_test");
  EXPECT_EQ(doc.at("manifest").at("git_sha").as_string(),
            run_manifest().git_sha);
  EXPECT_NE(doc.find("process"), nullptr);
  EXPECT_EQ(doc.at("options").at("seed").as_int(), 99);

  const auto& rows = doc.at("benchmarks").as_array();
  ASSERT_EQ(rows.size(), 2u);
  for (const json::Value& row : rows) {
    EXPECT_EQ(row.at("repetitions").as_int(), 6);
    EXPECT_EQ(row.at("warmup").as_int(), 2);
    // Every measured sample survives into the summary (the mock stream has
    // no gross outliers), so n == repetitions.
    EXPECT_EQ(row.at("stats").at("n").as_int(), 6);
    EXPECT_GT(row.at("stats").at("median").as_double(), 0.0);
  }
  // Registration order is execution order.
  EXPECT_EQ(rows[0].at("name").as_string(), "BM_HarnessSpin");
  EXPECT_EQ(rows[1].at("name").as_string(), "BM_HarnessOther");
}

TEST(BenchHarnessTest, ItemsPerIterAndCountersLand) {
  const json::Value doc = run_benches(mock_options(), "harness_test");
  const json::Value& spin = doc.at("benchmarks").as_array()[0];
  EXPECT_EQ(spin.at("items_per_iter").as_int(), 4);
  EXPECT_GT(spin.at("items_per_second").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(spin.at("counters").at("answer").as_double(), 42.0);
}

TEST(BenchHarnessTest, FilterSelectsSubstring) {
  BenchOptions options = mock_options();
  options.filter = "HarnessOther";
  const json::Value doc = run_benches(options, "harness_test");
  const auto& rows = doc.at("benchmarks").as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("name").as_string(), "BM_HarnessOther");

  options.filter = "NoSuchBenchAnywhere";
  EXPECT_TRUE(
      run_benches(options, "harness_test").at("benchmarks").as_array().empty());
}

TEST(BenchHarnessTest, MockTimeStatisticsAreByteIdentical) {
  const json::Value a = run_benches(mock_options(), "harness_test");
  const json::Value b = run_benches(mock_options(), "harness_test");
  // The full docs differ (timestamp, RSS); the statistics must not.
  EXPECT_EQ(a.at("benchmarks").dump(), b.at("benchmarks").dump());

  BenchOptions reseeded = mock_options();
  reseeded.seed = 100;
  const json::Value c = run_benches(reseeded, "harness_test");
  EXPECT_NE(a.at("benchmarks").dump(), c.at("benchmarks").dump());
}

TEST(BenchHarnessTest, RealClockProducesPlausibleStats) {
  BenchOptions options = mock_options();
  options.mock_time = false;
  options.repetitions = 3;
  options.warmup = 0;
  options.min_sample_ms = 0.01;  // keep calibration fast in CI
  options.filter = "BM_HarnessSpin";
  const json::Value doc = run_benches(options, "harness_test");
  const auto& rows = doc.at("benchmarks").as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GE(rows[0].at("iterations").as_int(), 1);
  const json::Value& stats = rows[0].at("stats");
  EXPECT_GT(stats.at("median").as_double(), 0.0);
  EXPECT_LE(stats.at("ci95_lo").as_double(), stats.at("median").as_double());
  EXPECT_GE(stats.at("ci95_hi").as_double(), stats.at("median").as_double());
}

}  // namespace
}  // namespace asimt::obs
