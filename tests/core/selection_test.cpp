// Tests for hot-block selection under the TT budget.
#include "core/selection.h"

#include <gtest/gtest.h>

#include "isa/assembler.h"

namespace asimt::core {
namespace {

// A program with one hot loop and one cold block after it.
constexpr const char* kLoopProgram = R"(
        .text
start:
        li      $t0, 0
        li      $t1, 100
loop:
        lw      $t2, 0($a0)
        add     $t3, $t3, $t2
        addiu   $a0, $a0, 4
        addiu   $t0, $t0, 1
        bne     $t0, $t1, loop
cold:
        sw      $t3, 0($a1)
        halt
)";

struct Fixture {
  isa::Program program;
  cfg::Cfg cfg;
  cfg::Profile profile;
};

Fixture make_setup() {
  Fixture s;
  s.program = isa::assemble(kLoopProgram);
  s.cfg = cfg::build_cfg(s.program);
  s.profile.block_counts.assign(s.cfg.blocks.size(), 0);
  // Synthesize a profile: entry once, loop 100 times, cold once.
  const int entry = s.cfg.block_starting_at(s.program.symbol("start"));
  const int loop = s.cfg.block_starting_at(s.program.symbol("loop"));
  const int cold = s.cfg.block_starting_at(s.program.symbol("cold"));
  s.profile.block_counts[static_cast<std::size_t>(entry)] = 1;
  s.profile.block_counts[static_cast<std::size_t>(loop)] = 100;
  s.profile.block_counts[static_cast<std::size_t>(cold)] = 1;
  s.profile.edge_counts[cfg::Profile::edge_key(entry, loop)] = 1;
  s.profile.edge_counts[cfg::Profile::edge_key(loop, loop)] = 99;
  s.profile.edge_counts[cfg::Profile::edge_key(loop, cold)] = 1;
  return s;
}

SelectionOptions default_options() {
  SelectionOptions opt;
  opt.chain.block_size = 5;
  opt.chain.allowed = std::span<const Transform>{kPaperSubset};
  return opt;
}

TEST(Selection, PicksTheHotLoop) {
  const Fixture s = make_setup();
  const SelectionResult result = select_and_encode(s.cfg, s.profile, default_options());
  ASSERT_FALSE(result.encodings.empty());
  EXPECT_EQ(result.encodings[0].start_pc, s.program.symbol("loop"));
}

TEST(Selection, SkipsColdBlocks) {
  const Fixture s = make_setup();
  SelectionOptions opt = default_options();
  opt.min_executions = 2;
  const SelectionResult result = select_and_encode(s.cfg, s.profile, opt);
  for (const BlockEncoding& enc : result.encodings) {
    const int idx = s.cfg.block_starting_at(enc.start_pc);
    EXPECT_GE(s.profile.block_counts[static_cast<std::size_t>(idx)], 2u);
  }
}

TEST(Selection, RespectsTtBudget) {
  const Fixture s = make_setup();
  SelectionOptions opt = default_options();
  opt.tt_budget = 1;
  const SelectionResult one = select_and_encode(s.cfg, s.profile, opt);
  EXPECT_LE(one.tt_entries_used, 1);
  // The 5-instruction loop needs exactly one entry at k=5.
  EXPECT_EQ(static_cast<int>(one.tt.entries.size()), one.tt_entries_used);
  opt.tt_budget = 0;
  const SelectionResult none = select_and_encode(s.cfg, s.profile, opt);
  EXPECT_TRUE(none.encodings.empty());
}

TEST(Selection, RespectsBbitBudget) {
  const Fixture s = make_setup();
  SelectionOptions opt = default_options();
  opt.min_executions = 1;
  opt.bbit_budget = 1;
  const SelectionResult result = select_and_encode(s.cfg, s.profile, opt);
  EXPECT_LE(result.bbit.size(), 1u);
}

TEST(Selection, BbitIndicesPointAtBlockStarts) {
  const Fixture s = make_setup();
  SelectionOptions opt = default_options();
  opt.min_executions = 1;
  const SelectionResult result = select_and_encode(s.cfg, s.profile, opt);
  ASSERT_EQ(result.bbit.size(), result.encodings.size());
  std::size_t expected_index = 0;
  for (std::size_t i = 0; i < result.bbit.size(); ++i) {
    EXPECT_EQ(result.bbit[i].pc, result.encodings[i].start_pc);
    EXPECT_EQ(result.bbit[i].tt_index, expected_index);
    expected_index += result.encodings[i].tt_entries.size();
  }
  EXPECT_EQ(expected_index, result.tt.entries.size());
}

TEST(Selection, ApplyToTextPatchesOnlySelectedBlocks) {
  const Fixture s = make_setup();
  const SelectionResult result = select_and_encode(s.cfg, s.profile, default_options());
  const auto image = result.apply_to_text(s.cfg.text, s.cfg.text_base);
  ASSERT_EQ(image.size(), s.cfg.text.size());
  // Words outside selected blocks are untouched.
  std::vector<bool> covered(image.size(), false);
  for (const BlockEncoding& enc : result.encodings) {
    const std::size_t first = (enc.start_pc - s.cfg.text_base) / 4;
    for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
      covered[first + i] = true;
      EXPECT_EQ(image[first + i], enc.encoded_words[i]);
    }
  }
  for (std::size_t i = 0; i < image.size(); ++i) {
    if (!covered[i]) EXPECT_EQ(image[i], s.cfg.text[i]);
  }
}

TEST(Selection, PredictedSavingsMatchEncodings) {
  const Fixture s = make_setup();
  SelectionOptions opt = default_options();
  opt.min_executions = 1;
  const SelectionResult result = select_and_encode(s.cfg, s.profile, opt);
  long long expected = 0;
  for (const BlockEncoding& enc : result.encodings) {
    const int idx = s.cfg.block_starting_at(enc.start_pc);
    expected += enc.saved_transitions() *
                static_cast<long long>(
                    s.profile.block_counts[static_cast<std::size_t>(idx)]);
  }
  EXPECT_EQ(result.predicted_dynamic_savings, expected);
}

TEST(Selection, LargerBudgetNeverSelectsFewerBlocks) {
  const Fixture s = make_setup();
  SelectionOptions opt = default_options();
  opt.min_executions = 1;
  opt.tt_budget = 1;
  const auto small = select_and_encode(s.cfg, s.profile, opt);
  opt.tt_budget = 16;
  const auto large = select_and_encode(s.cfg, s.profile, opt);
  EXPECT_GE(large.encodings.size(), small.encodings.size());
}

TEST(Selection, KnapsackRespectsBudgets) {
  const Fixture s = make_setup();
  SelectionOptions opt = default_options();
  opt.min_executions = 1;
  opt.policy = SelectionPolicy::kOptimalKnapsack;
  for (int budget : {0, 1, 2, 16}) {
    opt.tt_budget = budget;
    const SelectionResult result = select_and_encode(s.cfg, s.profile, opt);
    EXPECT_LE(result.tt_entries_used, budget);
    EXPECT_LE(static_cast<int>(result.bbit.size()), opt.bbit_budget);
  }
}

TEST(Selection, KnapsackNeverWorseThanGreedy) {
  const Fixture s = make_setup();
  for (int budget : {1, 2, 3, 16}) {
    SelectionOptions opt = default_options();
    opt.min_executions = 1;
    opt.tt_budget = budget;
    opt.policy = SelectionPolicy::kGreedyDensity;
    const auto greedy = select_and_encode(s.cfg, s.profile, opt);
    opt.policy = SelectionPolicy::kOptimalKnapsack;
    const auto knapsack = select_and_encode(s.cfg, s.profile, opt);
    EXPECT_GE(knapsack.predicted_dynamic_savings,
              greedy.predicted_dynamic_savings)
        << "budget=" << budget;
  }
}

TEST(Selection, KnapsackDecodesLikeGreedySelections) {
  const Fixture s = make_setup();
  SelectionOptions opt = default_options();
  opt.min_executions = 1;
  opt.policy = SelectionPolicy::kOptimalKnapsack;
  const SelectionResult result = select_and_encode(s.cfg, s.profile, opt);
  // TT indices must still be consistent after knapsack reordering.
  std::size_t expected_index = 0;
  for (std::size_t i = 0; i < result.bbit.size(); ++i) {
    EXPECT_EQ(result.bbit[i].tt_index, expected_index);
    expected_index += result.encodings[i].tt_entries.size();
  }
}

}  // namespace
}  // namespace asimt::core
