#include "core/block_code.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

#include "bitstream/bitseq.h"

namespace asimt::core {

namespace {

void check_k(int k) {
  if (k < 1 || k > 20) {
    throw std::invalid_argument("block size k must be in [1, 20]");
  }
}

// All k-bit words ordered by (transition count, numeric value): the order in
// which the solver tries candidate code words, mirroring the paper's
// "initially we try to assign a code word with 0 transitions" procedure.
std::vector<std::uint32_t> codes_by_transitions(int k) {
  std::vector<std::uint32_t> codes(std::size_t{1} << k);
  for (std::uint32_t c = 0; c < codes.size(); ++c) codes[c] = c;
  std::stable_sort(codes.begin(), codes.end(),
                   [k](std::uint32_t a, std::uint32_t b) {
                     return bits::word_transitions(a, k) < bits::word_transitions(b, k);
                   });
  return codes;
}

}  // namespace

std::uint32_t decode_block(Transform tau, std::uint32_t code, int k) {
  std::uint32_t word = code & 1u;  // x_0 = x̃_0
  int prev = static_cast<int>(code & 1u);
  for (int i = 1; i < k; ++i) {
    const int enc = static_cast<int>((code >> i) & 1u);
    const int orig = tau.apply(enc, prev);
    word |= static_cast<std::uint32_t>(orig) << i;
    prev = orig;
  }
  return word;
}

std::uint32_t decode_block_overlapped(Transform tau, std::uint32_t code,
                                      int overlap_original, int k) {
  std::uint32_t word = static_cast<std::uint32_t>(overlap_original & 1);
  // History for the first recurrence instance is the ENCODED overlap bit.
  int prev = static_cast<int>(code & 1u);
  for (int i = 1; i < k; ++i) {
    const int enc = static_cast<int>((code >> i) & 1u);
    const int orig = tau.apply(enc, prev);
    word |= static_cast<std::uint32_t>(orig) << i;
    prev = orig;
  }
  return word;
}

long long BlockCode::ttn() const {
  long long total = 0;
  for (const CodeAssignment& e : entries) total += e.word_transitions;
  return total;
}

long long BlockCode::rtn() const {
  long long total = 0;
  for (const CodeAssignment& e : entries) total += e.code_transitions;
  return total;
}

double BlockCode::improvement_percent() const {
  const long long t = ttn();
  if (t == 0) return 0.0;
  return 100.0 * static_cast<double>(t - rtn()) / static_cast<double>(t);
}

BlockCode solve_block_code(int k, std::span<const Transform> allowed) {
  check_k(k);
  const std::uint32_t nwords = std::uint32_t{1} << k;
  const std::vector<std::uint32_t> candidates = codes_by_transitions(k);

  BlockCode result;
  result.k = k;
  result.entries.resize(nwords);
  for (std::uint32_t word = 0; word < nwords; ++word) {
    CodeAssignment entry;
    entry.word = word;
    entry.word_transitions = bits::word_transitions(word, k);
    bool found = false;
    for (std::uint32_t code : candidates) {
      // decode forces x_0 = x̃_0, so mismatching first bits can never work.
      if ((code & 1u) != (word & 1u)) continue;
      for (Transform tau : allowed) {
        if (decode_block(tau, code, k) == word) {
          entry.code = code;
          entry.tau = tau;
          entry.code_transitions = bits::word_transitions(code, k);
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) {
      throw std::logic_error(
          "solve_block_code: no feasible code (allowed set lacks identity?)");
    }
    result.entries[word] = entry;
  }
  return result;
}

BlockCode solve_block_code(int k) {
  return solve_block_code(k, std::span<const Transform>{kAllTransforms});
}

int min_code_transitions(std::uint32_t word, int k,
                         std::span<const Transform> allowed) {
  check_k(k);
  const std::uint32_t ncodes = std::uint32_t{1} << k;
  int best = std::numeric_limits<int>::max();
  for (std::uint32_t code = 0; code < ncodes; ++code) {
    if ((code & 1u) != (word & 1u)) continue;
    const int t = bits::word_transitions(code, k);
    if (t >= best) continue;
    for (Transform tau : allowed) {
      if (decode_block(tau, code, k) == word) {
        best = t;
        break;
      }
    }
  }
  if (best == std::numeric_limits<int>::max()) {
    throw std::logic_error("min_code_transitions: infeasible word");
  }
  return best;
}

namespace {

// best_single[word][t] = fewest code transitions achievable for `word` using
// only Transform{t}, or INT_MAX if that transform cannot produce the word.
std::vector<std::array<int, 16>> per_transform_minima(int k) {
  const std::uint32_t nwords = std::uint32_t{1} << k;
  std::vector<std::array<int, 16>> best(nwords);
  for (auto& row : best) row.fill(std::numeric_limits<int>::max());
  for (std::uint32_t code = 0; code < nwords; ++code) {
    const int t = bits::word_transitions(code, k);
    for (unsigned tt = 0; tt < 16; ++tt) {
      const std::uint32_t word = decode_block(Transform{tt}, code, k);
      best[word][tt] = std::min(best[word][tt], t);
    }
  }
  return best;
}

}  // namespace

bool subset_is_optimal(int k, std::span<const Transform> subset) {
  const auto best = per_transform_minima(k);
  for (const auto& row : best) {
    int full = std::numeric_limits<int>::max();
    for (int v : row) full = std::min(full, v);
    int restricted = std::numeric_limits<int>::max();
    for (Transform t : subset) {
      restricted = std::min(restricted, row[t.truth_table()]);
    }
    if (restricted != full) return false;
  }
  return true;
}

std::vector<std::uint32_t> optimal_subsets_of_size(int size, int max_k) {
  if (size < 1 || size > 16) {
    throw std::invalid_argument("subset size must be in [1, 16]");
  }
  // Per-word minima for each k, computed once.
  std::vector<std::vector<std::array<int, 16>>> minima;
  for (int k = 2; k <= max_k; ++k) minima.push_back(per_transform_minima(k));

  std::vector<std::uint32_t> winners;
  for (std::uint32_t mask = 0; mask < (1u << 16); ++mask) {
    if (std::popcount(mask) != size) continue;
    bool ok = true;
    for (const auto& table : minima) {
      for (const auto& row : table) {
        int full = std::numeric_limits<int>::max();
        for (int v : row) full = std::min(full, v);
        int restricted = std::numeric_limits<int>::max();
        for (unsigned tt = 0; tt < 16; ++tt) {
          if (mask & (1u << tt)) restricted = std::min(restricted, row[tt]);
        }
        if (restricted != full) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (ok) winners.push_back(mask);
  }
  return winners;
}

}  // namespace asimt::core
