// The crash-safe flight recorder: ring registry lifecycle, dump/load round
// trips, tolerance for the damage a crash leaves behind (corrupt rows,
// truncated tails), a real SIGABRT death test, and the Chrome-trace export.
#include "obsv/flight.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "telemetry/chrome_trace.h"
#include "telemetry/json.h"

namespace asimt::obsv {
namespace {

std::string temp_path(const std::string& tag) {
  return "/tmp/asimt_flight_" + tag + "_" + std::to_string(::getpid());
}

Span make_span(std::uint64_t conn, std::uint64_t seq) {
  Span span;
  span.seq = seq;
  span.conn_id = conn;
  span.start_ns = seq * 1000;
  span.stage_ns[static_cast<unsigned>(Stage::kParse)] = 10 * seq;
  span.stage_ns[static_cast<unsigned>(Stage::kExecute)] = 100 * seq;
  span.op = static_cast<std::uint8_t>(Op::kEncode);
  span.outcome = static_cast<std::uint8_t>(Outcome::kMiss);
  span.shard = 3;
  span.request_bytes = 142;
  span.payload_bytes = 286;
  return span;
}

TEST(FlightRecorder, SpanToJsonCarriesTheDocumentedSchema) {
  const json::Value row = span_to_json(make_span(2, 9));
  EXPECT_EQ(row.at("seq").as_int(), 9);
  EXPECT_EQ(row.at("conn").as_int(), 2);
  EXPECT_EQ(row.at("start_ns").as_int(), 9000);
  EXPECT_EQ(row.at("parse_ns").as_int(), 90);
  EXPECT_EQ(row.at("execute_ns").as_int(), 900);
  EXPECT_EQ(row.at("read_ns").as_int(), 0);
  EXPECT_EQ(row.at("op").as_string(), "encode");
  EXPECT_EQ(row.at("outcome").as_string(), "miss");
  EXPECT_EQ(row.at("error").as_string(), "ok");
  EXPECT_EQ(row.at("shard").as_int(), 3);
  EXPECT_EQ(row.at("request_bytes").as_int(), 142);
  EXPECT_EQ(row.at("payload_bytes").as_int(), 286);
}

TEST(FlightRecorder, DistinctConnectionsGetDistinctRingsAndReleaseReuses) {
  FlightRecorder recorder(temp_path("rings"), 16);
  SpanRing* a = recorder.acquire_ring(1);
  SpanRing* b = recorder.acquire_ring(2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(a->conn_id(), 1u);
  EXPECT_EQ(b->conn_id(), 2u);
  a->push(make_span(1, 1));
  recorder.release_ring(a);
  // Released rings keep their contents (post-mortem coverage) until reuse.
  EXPECT_EQ(recorder.resident_spans(), 1u);
  SpanRing* c = recorder.acquire_ring(3);
  EXPECT_EQ(c, a);  // the released slot is reused...
  EXPECT_EQ(c->conn_id(), 3u);
  EXPECT_EQ(c->pushed(), 0u);  // ...reset for its new owner
}

TEST(FlightRecorder, DumpLoadRoundTripsEverySpan) {
  const std::string path = temp_path("roundtrip");
  FlightRecorder recorder(path, 16);
  SpanRing* r1 = recorder.acquire_ring(1);
  SpanRing* r2 = recorder.acquire_ring(2);
  r1->push(make_span(1, 1));
  r1->push(make_span(1, 2));
  r2->push(make_span(2, 3));
  EXPECT_EQ(recorder.resident_spans(), 3u);

  const long long rows = recorder.dump("test_reason");
  EXPECT_EQ(rows, 3);

  const FlightDump dump = load_flight_dump(path);
  EXPECT_EQ(dump.reason, "test_reason");
  EXPECT_EQ(dump.pid, static_cast<long long>(::getpid()));
  EXPECT_EQ(dump.corrupt_rows, 0u);
  EXPECT_FALSE(dump.truncated);
  ASSERT_EQ(dump.spans.size(), 3u);
  // Sorted by (conn, seq).
  EXPECT_EQ(dump.spans[0].conn_id, 1u);
  EXPECT_EQ(dump.spans[0].seq, 1u);
  EXPECT_EQ(dump.spans[1].seq, 2u);
  EXPECT_EQ(dump.spans[2].conn_id, 2u);
  // Field fidelity through the signal-safe writer and back.
  EXPECT_EQ(dump.spans[2].stage_ns[static_cast<unsigned>(Stage::kExecute)],
            300u);
  EXPECT_EQ(dump.spans[2].op, static_cast<std::uint8_t>(Op::kEncode));
  EXPECT_EQ(dump.spans[2].outcome, static_cast<std::uint8_t>(Outcome::kMiss));
  EXPECT_EQ(dump.spans[2].request_bytes, 142u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, ReaderToleratesCorruptAndTruncatedDumps) {
  const std::string path = temp_path("corrupt");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"asimt_flight\":1,\"reason\":\"SIGSEGV\",\"pid\":42}\n";
    out << span_to_json(make_span(1, 1)).dump() << "\n";
    out << "{\"seq\":2,\"conn\":1,GARBAGE!!\n";          // corrupt interior row
    out << span_to_json(make_span(1, 3)).dump() << "\n";
    out << "{\"seq\":4,\"conn\":1,\"start_ns\":12";      // cut mid-write, no \n
  }
  const FlightDump dump = load_flight_dump(path);
  EXPECT_EQ(dump.reason, "SIGSEGV");
  EXPECT_EQ(dump.pid, 42);
  EXPECT_EQ(dump.corrupt_rows, 1u);
  EXPECT_TRUE(dump.truncated);
  ASSERT_EQ(dump.spans.size(), 2u);
  EXPECT_EQ(dump.spans[0].seq, 1u);
  EXPECT_EQ(dump.spans[1].seq, 3u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, NonDumpFilesAreRejectedLoudly) {
  const std::string path = temp_path("notadump");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"some\":\"other json\"}\n";
  }
  EXPECT_THROW(load_flight_dump(path), std::runtime_error);
  EXPECT_THROW(load_flight_dump(temp_path("missing")), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FlightRecorder, TraceEventsDriveTheChromeExporter) {
  FlightDump dump;
  dump.spans.push_back(make_span(2, 9));
  const std::vector<json::Value> events = flight_trace_events(dump);
  // One enclosing begin/end pair plus one per non-empty stage (parse,
  // execute) — six events total for this span.
  ASSERT_EQ(events.size(), 6u);
  for (const json::Value& event : events) {
    EXPECT_EQ(event.at("tid").as_int(), 3);  // conn 2 + 1: never "main"
    EXPECT_TRUE(event.at("t_us").is_int());
  }
  const json::Value chrome = telemetry::chrome_trace_from_events(events);
  const json::Array& trace = chrome.at("traceEvents").as_array();
  // Every B has a matching E once metadata rows are set aside.
  int depth = 0;
  std::size_t span_events = 0;
  for (const json::Value& event : trace) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "B") { ++depth; ++span_events; }
    if (ph == "E") { --depth; ++span_events; }
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(span_events, 6u);
}

using FlightRecorderDeathTest = ::testing::Test;

TEST(FlightRecorderDeathTest, AbortMidRequestLeavesAParseableDump) {
  const std::string path = temp_path("sigabrt");
  std::remove(path.c_str());
  // The child installs the crash handlers with a populated ring and dies on
  // SIGABRT; the re-raise keeps the kill-by-signal exit status. The parent
  // then reads the dump the handler wrote on the way down.
  EXPECT_EXIT(
      {
        FlightRecorder recorder(path, 16);
        SpanRing* ring = recorder.acquire_ring(5);
        ring->push(make_span(5, 1));
        ring->push(make_span(5, 2));
        install_crash_handlers(&recorder);
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");
  const FlightDump dump = load_flight_dump(path);
  EXPECT_EQ(dump.reason, "SIGABRT");
  ASSERT_EQ(dump.spans.size(), 2u);
  EXPECT_EQ(dump.spans[0].conn_id, 5u);
  EXPECT_EQ(dump.spans[1].seq, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asimt::obsv
