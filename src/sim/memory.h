// Sparse paged byte-addressable memory for the ASIMT simulator.
//
// Little-endian, 4 KiB pages allocated on first touch. A one-entry page
// cache keeps the common case (streaming through the same page) cheap enough
// for the tens of millions of instructions the Fig. 6 workloads execute.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "isa/assembler.h"

namespace asimt::sim {

class MemoryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Memory {
 public:
  static constexpr std::uint32_t kPageBits = 12;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;

  std::uint8_t load8(std::uint32_t addr) const { return page(addr)[offset(addr)]; }

  std::uint16_t load16(std::uint32_t addr) const {
    check_aligned(addr, 2);
    const std::uint8_t* p = page(addr) + offset(addr);
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t load32(std::uint32_t addr) const {
    check_aligned(addr, 4);
    const std::uint8_t* p = page(addr) + offset(addr);
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  void store8(std::uint32_t addr, std::uint8_t v) { page_mut(addr)[offset(addr)] = v; }

  void store16(std::uint32_t addr, std::uint16_t v) {
    check_aligned(addr, 2);
    std::uint8_t* p = page_mut(addr) + offset(addr);
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
  }

  void store32(std::uint32_t addr, std::uint32_t v) {
    check_aligned(addr, 4);
    if (addr - mmio_base_ < mmio_size_) {
      mmio_store_(addr - mmio_base_, v);
      return;
    }
    std::uint8_t* p = page_mut(addr) + offset(addr);
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
  }

  float load_float(std::uint32_t addr) const { return std::bit_cast<float>(load32(addr)); }
  void store_float(std::uint32_t addr, float v) { store32(addr, std::bit_cast<std::uint32_t>(v)); }

  // Word stores into [base, base+size) are routed to `handler` instead of
  // RAM — how the decoder peripheral of §7.1's software-reprogramming
  // alternative is reached ("accessed as a memory of a special peripheral
  // device"). One region; size 0 unmaps. Loads from the region still read
  // RAM (the peripheral is write-only, like the paper's tables).
  using MmioStoreHandler = std::function<void(std::uint32_t offset, std::uint32_t value)>;
  void map_mmio(std::uint32_t base, std::uint32_t size, MmioStoreHandler handler) {
    if (size != 0 && !handler) {
      throw MemoryError("map_mmio: handler required for a non-empty region");
    }
    mmio_base_ = base;
    mmio_size_ = size;
    mmio_store_ = std::move(handler);
  }

  // Copies an assembled program's text and data into memory.
  void load_program(const isa::Program& program) {
    for (std::size_t i = 0; i < program.text.size(); ++i) {
      store32(program.text_base + 4 * static_cast<std::uint32_t>(i), program.text[i]);
    }
    for (std::size_t i = 0; i < program.data.size(); ++i) {
      store8(program.data_base + static_cast<std::uint32_t>(i), program.data[i]);
    }
  }

 private:
  static std::uint32_t page_index(std::uint32_t addr) { return addr >> kPageBits; }
  static std::uint32_t offset(std::uint32_t addr) { return addr & (kPageSize - 1); }

  static void check_aligned(std::uint32_t addr, std::uint32_t n) {
    if (addr % n != 0) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "misaligned %u-byte access at 0x%08x", n, addr);
      throw MemoryError(buf);
    }
  }

  const std::uint8_t* page(std::uint32_t addr) const {
    const std::uint32_t idx = page_index(addr);
    if (idx == cached_index_ && cached_page_ != nullptr) return cached_page_;
    auto it = pages_.find(idx);
    if (it == pages_.end()) {
      // Reads of untouched memory return zeroes without allocating.
      static const std::uint8_t kZeroPage[kPageSize] = {};
      return kZeroPage;
    }
    cached_index_ = idx;
    cached_page_ = it->second.get();
    return cached_page_;
  }

  std::uint8_t* page_mut(std::uint32_t addr) {
    const std::uint32_t idx = page_index(addr);
    if (idx == cached_index_ && cached_page_ != nullptr) return cached_page_;
    auto& slot = pages_[idx];
    if (!slot) slot = std::make_unique<std::uint8_t[]>(kPageSize);
    cached_index_ = idx;
    cached_page_ = slot.get();
    return cached_page_;
  }

  std::unordered_map<std::uint32_t, std::unique_ptr<std::uint8_t[]>> pages_;
  mutable std::uint32_t cached_index_ = ~0u;
  mutable std::uint8_t* cached_page_ = nullptr;
  std::uint32_t mmio_base_ = 0;
  std::uint32_t mmio_size_ = 0;  // 0 = no MMIO region mapped
  MmioStoreHandler mmio_store_;
};

}  // namespace asimt::sim
