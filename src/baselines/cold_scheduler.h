// "Cold scheduling" baseline: compiler-side instruction reordering for low
// bus power (Su, Tsui & Despain's technique family). Within each basic
// block, independent instructions are list-scheduled so consecutive words
// have small Hamming distance — a zero-hardware alternative the paper's §2
// survey class of software techniques would include.
//
// Semantics are preserved exactly: instructions only move when no
// register / hi-lo / FCC / memory dependence orders them, and control-flow
// instructions never move. Composes with ASIMT (schedule first, encode
// after) — see bench/ablation_cold_schedule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cfg/cfg.h"

namespace asimt::baselines {

struct ColdScheduleResult {
  std::vector<std::uint32_t> words;  // reordered block
  long long original_transitions = 0;
  long long scheduled_transitions = 0;
};

// Reorders one basic block. The final instruction stays in place when it is
// control flow; everything else moves freely subject to dependences.
ColdScheduleResult cold_schedule_block(std::span<const std::uint32_t> words);

// Applies cold scheduling to every basic block of a program; returns the
// full reordered text image.
std::vector<std::uint32_t> cold_schedule_program(const cfg::Cfg& cfg);

}  // namespace asimt::baselines
