#include "core/fetch_decoder.h"

#include <stdexcept>

namespace asimt::core {

FetchDecoder::FetchDecoder(TtConfig tt, std::vector<BbitEntry> bbit)
    : tt_(std::move(tt)) {
  if (tt_.block_size < 2 || tt_.block_size > 16) {
    throw std::invalid_argument("FetchDecoder: bad block size");
  }
  // A τ index is a 3-bit field indexing kPaperSubset; a wider value cannot
  // come off the wire format and means the in-memory table is corrupt or was
  // never packed. Fail with coordinates instead of silently masking.
  for (std::size_t i = 0; i < tt_.entries.size(); ++i) {
    for (unsigned line = 0; line < kBusLines; ++line) {
      if (tt_.entries[i].tau[line] >= kPaperSubset.size()) {
        throw DecodeFault(
            "FetchDecoder: TT entry " + std::to_string(i) + " line " +
                std::to_string(line) + ": transform index " +
                std::to_string(tt_.entries[i].tau[line]) +
                " outside the 8-transform subset",
            /*pc=*/0, i, static_cast<int>(line));
      }
    }
  }
  lane_masks_.resize(tt_.entries.size());
  for (std::size_t i = 0; i < tt_.entries.size(); ++i) {
    lane_masks_[i].fill(0);
    for (unsigned line = 0; line < kBusLines; ++line) {
      lane_masks_[i][tt_.entries[i].tau[line]] |= 1u << line;
    }
  }
  for (const BbitEntry& entry : bbit) {
    if (entry.tt_index >= tt_.entries.size() && !tt_.entries.empty()) {
      throw std::invalid_argument("FetchDecoder: BBIT points past TT");
    }
    bbit_.emplace(entry.pc, entry.tt_index);
  }
}

bool FetchDecoder::enter_entry(std::size_t index, bool at_bb_entry,
                               std::uint32_t pc) {
  if (index >= tt_.entries.size()) {
    throw DecodeFault(
        "FetchDecoder: pc " + std::to_string(pc) + ": block needs TT entry " +
            std::to_string(index) + " but only " +
            std::to_string(tt_.entries.size()) +
            " are provisioned (truncated TT payload or corrupted E/CT chain)",
        pc, index);
  }
  if (guard_ && !guard_(index, tt_.entries[index])) {
    // Protection veto: the entry failed its check (e.g. TT parity). Degrade
    // to identity until the next BBIT hit; the fetch engine serves the
    // unencoded copy of the block from here on.
    ++stats_.degraded;
    active_ = false;
    countdown_ = -1;
    return false;
  }
  entry_index_ = index;
  pos_in_block_ = 0;
  // The chain-initial entry covers k instructions; every later entry adds
  // k-1 new instructions (its first bit is the one-bit overlap).
  entry_quota_ = at_bb_entry ? tt_.block_size : tt_.block_size - 1;
  const TtEntry& entry = tt_.entries[index];
  if (entry.end) {
    // CT counts the tail block's instructions including the overlap bit; at
    // a block switch the overlap instruction was already consumed by the
    // previous entry (at BB entry there is no previous entry).
    countdown_ = at_bb_entry ? entry.ct : entry.ct - 1;
  } else {
    countdown_ = -1;
  }
  return true;
}

std::uint32_t FetchDecoder::decode_word(std::uint32_t bus_word) {
  const std::array<std::uint32_t, 8>& masks = lane_masks_[entry_index_];
  std::uint32_t word = 0;
  for (std::size_t t = 0; t < masks.size(); ++t) {
    if (!masks[t]) continue;
    word |= static_cast<std::uint32_t>(
                kPaperSubset[t].apply_word(bus_word, history_)) &
            masks[t];
  }
  return word;
}

std::uint32_t FetchDecoder::feed(std::uint32_t pc, std::uint32_t bus_word) {
  ++stats_.fetches;

  // BBIT lookup happens for every fetch address; a hit (re)enters encoded
  // mode at that block's first TT entry — this is how loop back edges resume
  // decoding at the header (paper §7.2).
  if (const auto hit = bbit_.find(pc); hit != bbit_.end()) {
    ++stats_.bbit_hits;
    if (!enter_entry(hit->second, /*at_bb_entry=*/true, pc)) {
      // Vetoed at block entry: the chain-initial word is stored plain, so
      // passing it through is still the correct instruction.
      ++stats_.raw;
      return bus_word;
    }
    active_ = true;
    // The first instruction of a chain is stored plain; it seeds history.
    history_ = bus_word;
    ++stats_.decoded;
    if (countdown_ > 0 && --countdown_ == 0) active_ = false;
    ++pos_in_block_;
    return bus_word;
  }

  if (!active_) {
    ++stats_.raw;
    return bus_word;  // identity mode
  }

  const std::uint32_t decoded = decode_word(bus_word);
  ++stats_.decoded;
  ++pos_in_block_;
  if (countdown_ > 0 && --countdown_ == 0) {
    active_ = false;
    return decoded;
  }
  if (pos_in_block_ == entry_quota_) {
    // This fetch was the block's last instruction (the next block's overlap
    // bit): advance to the next TT entry and reload the history registers
    // from the RAW bus value (DESIGN.md §6 rule 3).
    if (enter_entry(entry_index_ + 1, /*at_bb_entry=*/false, pc)) {
      history_ = bus_word;
    }
  } else {
    history_ = decoded;
  }
  return decoded;
}

}  // namespace asimt::core
