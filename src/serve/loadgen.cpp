#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/manifest.h"
#include "serve/client.h"
#include "telemetry/json.h"

namespace asimt::serve {

namespace {

using Clock = std::chrono::steady_clock;

// SplitMix64: the repo's standard seed-expansion PRNG (check/rng.h uses the
// same construction). Deterministic across platforms.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  // Uniform double in (0, 1] — never 0, so -log() is finite.
  double next_unit() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740993.0;
  }
};

// The deterministic workload pool: small countdown kernels whose loop bodies
// differ enough that each assembles to a distinct instruction image (its own
// cache entry). Generated, not loaded from disk, so the loadgen needs no
// fixture files and every invocation agrees on the pool.
std::vector<std::string> make_program_pool() {
  std::vector<std::string> pool;
  for (int variant = 0; variant < 6; ++variant) {
    std::string text = ".text\nstart:\n";
    text += "  li $t0, " + std::to_string(17 + 11 * variant) + "\n";
    text += "  li $t1, 0\n";
    text += "loop:\n";
    for (int op = 0; op <= variant; ++op) {
      text += "  addiu $t1, $t1, " + std::to_string(3 + op) + "\n";
    }
    text += "  addiu $t0, $t0, -1\n";
    text += "  bnez $t0, loop\n";
    text += "  halt\n";
    pool.push_back(std::move(text));
  }
  return pool;
}

// Requests are pre-rendered minus the id ("body" = everything after the id
// field), so the per-send cost is one integer format + two appends, not a
// JSON escape of the program text.
std::vector<std::string> make_request_bodies() {
  // Every request opts into the server-side latency echo; the echoed field
  // lives in the reply envelope, outside the cached payload, so this does
  // not disturb the byte-identity contract.
  std::vector<std::string> bodies;
  const std::vector<std::string> pool = make_program_pool();
  for (const std::string& text : pool) {
    for (int k = 4; k <= 6; ++k) {
      bodies.push_back(",\"echo_span\":true,\"op\":\"encode\",\"text\":\"" +
                       json::escape(text) + "\",\"k\":" + std::to_string(k) +
                       "}");
    }
  }
  // One verify body per program (k=5) keeps the decode path in the mix.
  for (const std::string& text : pool) {
    bodies.push_back(",\"echo_span\":true,\"op\":\"verify\",\"text\":\"" +
                     json::escape(text) + "\",\"k\":5}");
  }
  return bodies;
}

struct ConnResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t errors = 0;
  bool connect_failed = false;
  std::vector<double> latencies_ms;
  std::vector<double> server_ms;  // echoed server_ns per reply, as ms
  Clock::time_point last_reply{};
};

// Pulls the echoed "server_ns" integer out of a reply line, if present.
// The envelope is spliced (not re-serialized), so the field, when present,
// is exactly `"server_ns":<digits>`.
bool parse_server_ns(const std::string& reply, std::uint64_t& out) {
  static const std::string kField = "\"server_ns\":";
  const std::size_t pos = reply.find(kField);
  if (pos == std::string::npos) return false;
  std::uint64_t value = 0;
  std::size_t i = pos + kField.size();
  if (i >= reply.size() || reply[i] < '0' || reply[i] > '9') return false;
  for (; i < reply.size() && reply[i] >= '0' && reply[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(reply[i] - '0');
  }
  out = value;
  return true;
}

// One loadgen connection: a sender thread pacing the open-loop schedule and
// a receiver thread matching FIFO replies to their scheduled send times.
void run_connection(const LoadgenOptions& options, unsigned conn_index,
                    const std::vector<std::string>& bodies,
                    Clock::time_point start, ConnResult& result) {
  Client client;
  if (!client.connect(options.socket_path)) {
    result.connect_failed = true;
    return;
  }
  const double per_conn_rate =
      options.rate / static_cast<double>(std::max(1u, options.conns));
  const double mean_gap_s = 1.0 / std::max(1e-6, per_conn_rate);

  std::mutex inflight_mu;
  std::deque<Clock::time_point> inflight;  // scheduled send time, FIFO
  std::atomic<std::uint64_t> sent{0};
  std::atomic<bool> sender_done{false};

  std::thread receiver([&] {
    for (;;) {
      const std::uint64_t target = sent.load(std::memory_order_acquire);
      if (result.received == target) {
        if (sender_done.load(std::memory_order_acquire)) break;
        // All outstanding replies drained but the sender is still pacing:
        // yield briefly instead of blocking on a reply that is not due.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      const std::optional<std::string> reply = client.recv_line();
      if (!reply) break;  // daemon went away; remaining requests are lost
      const Clock::time_point now = Clock::now();
      Clock::time_point scheduled;
      {
        std::lock_guard<std::mutex> lock(inflight_mu);
        scheduled = inflight.front();
        inflight.pop_front();
      }
      ++result.received;
      result.last_reply = now;
      result.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - scheduled).count());
      if (reply->find("\"ok\":true") == std::string::npos) ++result.errors;
      std::uint64_t server_ns = 0;
      if (parse_server_ns(*reply, server_ns)) {
        result.server_ms.push_back(static_cast<double>(server_ns) / 1e6);
      }
    }
  });

  SplitMix64 rng{options.seed ^ (0x9E3779B97F4A7C15ull * (conn_index + 1))};
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.seconds));
  Clock::time_point scheduled = start;
  std::uint64_t seq = 0;
  for (;;) {
    scheduled += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(rng.next_unit()) * mean_gap_s));
    if (scheduled >= deadline) break;
    // Open loop: sleep until the *scheduled* instant regardless of how the
    // previous request fared, then stamp latency from that instant.
    std::this_thread::sleep_until(scheduled);
    const std::uint64_t pick = rng.next();
    const std::string& body = bodies[pick % bodies.size()];
    const std::uint64_t id =
        static_cast<std::uint64_t>(conn_index) * 1'000'000'000ull + seq++;
    {
      std::lock_guard<std::mutex> lock(inflight_mu);
      inflight.push_back(scheduled);
    }
    if (!client.send_line("{\"id\":" + std::to_string(id) + body)) {
      std::lock_guard<std::mutex> lock(inflight_mu);
      inflight.pop_back();
      break;
    }
    sent.fetch_add(1, std::memory_order_release);
  }
  sender_done.store(true, std::memory_order_release);
  receiver.join();
  result.sent = sent.load(std::memory_order_relaxed);
  client.close();
}

json::Value stats_row(const std::string& name, double median,
                      std::uint64_t count) {
  json::Value stats = json::Value::object();
  stats.set("median", median);
  stats.set("count", static_cast<long long>(count));
  json::Value row = json::Value::object();
  row.set("name", name);
  row.set("stats", std::move(stats));
  return row;
}

}  // namespace

double interpolated_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  // Type-7 (the R/NumPy default): rank h = (n-1)q, linear between the two
  // covering order statistics. The old ceil-rank selection returned the max
  // for every q > (n-1)/n, which made p99.9 meaningless below 1000 samples.
  const double h = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

LoadgenReport run_loadgen(const LoadgenOptions& options) {
  const std::vector<std::string> bodies = make_request_bodies();
  const unsigned conns = std::max(1u, options.conns);
  std::vector<ConnResult> results(conns);
  // A common start instant slightly in the future so every connection's
  // schedule begins together (connection setup cost stays off the clock).
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (unsigned c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      run_connection(options, c, bodies, start, results[c]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadgenReport report;
  std::vector<double> latencies;
  std::vector<double> server;
  Clock::time_point last_reply = start;
  for (const ConnResult& result : results) {
    report.sent += result.sent;
    report.received += result.received;
    report.errors += result.errors;
    if (result.connect_failed) ++report.connect_failures;
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    server.insert(server.end(), result.server_ms.begin(),
                  result.server_ms.end());
    if (result.received > 0 && result.last_reply > last_reply) {
      last_reply = result.last_reply;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(server.begin(), server.end());
  report.elapsed_seconds =
      std::chrono::duration<double>(last_reply - start).count();
  report.throughput_rps =
      report.elapsed_seconds > 0.0
          ? static_cast<double>(report.received) / report.elapsed_seconds
          : 0.0;
  report.p50_ms = interpolated_quantile(latencies, 0.50);
  report.p90_ms = interpolated_quantile(latencies, 0.90);
  report.p99_ms = interpolated_quantile(latencies, 0.99);
  report.p999_ms = interpolated_quantile(latencies, 0.999);
  report.max_ms = latencies.empty() ? 0.0 : latencies.back();
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    report.mean_ms = sum / static_cast<double>(latencies.size());
  }
  report.server_samples = server.size();
  report.server_p50_ms = interpolated_quantile(server, 0.50);
  report.server_p90_ms = interpolated_quantile(server, 0.90);
  report.server_p99_ms = interpolated_quantile(server, 0.99);
  report.server_p999_ms = interpolated_quantile(server, 0.999);
  report.server_max_ms = server.empty() ? 0.0 : server.back();
  if (!server.empty()) {
    double sum = 0.0;
    for (const double v : server) sum += v;
    report.server_mean_ms = sum / static_cast<double>(server.size());
  }
  return report;
}

json::Value loadgen_artifact(const LoadgenOptions& options,
                             const LoadgenReport& report) {
  json::Value doc = json::Value::object();
  doc.set("schema_version", 2);
  doc.set("bench", "serve_loadgen");
  json::Value opts = json::Value::object();
  opts.set("conns", options.conns);
  opts.set("rate", options.rate);
  opts.set("seconds", options.seconds);
  opts.set("seed", options.seed);
  doc.set("options", std::move(opts));
  json::Value summary = json::Value::object();
  summary.set("sent", report.sent);
  summary.set("received", report.received);
  summary.set("errors", report.errors);
  summary.set("connect_failures", report.connect_failures);
  summary.set("elapsed_seconds", report.elapsed_seconds);
  summary.set("throughput_rps", report.throughput_rps);
  // Server-observed latency rides in the summary (not the gated benchmark
  // rows): it is context for reading the client-observed numbers, with the
  // client-minus-server gap isolating queueing + transport.
  json::Value server = json::Value::object();
  server.set("samples", report.server_samples);
  server.set("p50_ms", report.server_p50_ms);
  server.set("p90_ms", report.server_p90_ms);
  server.set("p99_ms", report.server_p99_ms);
  server.set("p999_ms", report.server_p999_ms);
  server.set("max_ms", report.server_max_ms);
  server.set("mean_ms", report.server_mean_ms);
  summary.set("server_latency", std::move(server));
  doc.set("summary", std::move(summary));
  json::Value rows = json::Value::array();
  rows.push_back(stats_row("latency/p50", report.p50_ms, report.received));
  rows.push_back(stats_row("latency/p90", report.p90_ms, report.received));
  rows.push_back(stats_row("latency/p99", report.p99_ms, report.received));
  rows.push_back(stats_row("latency/p999", report.p999_ms, report.received));
  // Throughput in gate-friendly lower-is-better form: ns per request. The
  // human-readable requests/second lives in "summary".
  rows.push_back(stats_row(
      "req_time_ns",
      report.throughput_rps > 0.0 ? 1e9 / report.throughput_rps : 0.0,
      report.received));
  doc.set("benchmarks", std::move(rows));
  obs::embed_manifest(doc, obs::ManifestFields::kFull);
  return doc;
}

std::string format_report(const LoadgenReport& report) {
  char buffer[768];
  int n = std::snprintf(
      buffer, sizeof(buffer),
      "sent %llu  received %llu  errors %llu  connect_failures %llu\n"
      "elapsed %.3f s  throughput %.0f req/s\n"
      "client ms   p50 %.3f  p90 %.3f  p99 %.3f  p99.9 %.3f  "
      "max %.3f  mean %.3f\n",
      static_cast<unsigned long long>(report.sent),
      static_cast<unsigned long long>(report.received),
      static_cast<unsigned long long>(report.errors),
      static_cast<unsigned long long>(report.connect_failures),
      report.elapsed_seconds, report.throughput_rps, report.p50_ms,
      report.p90_ms, report.p99_ms, report.p999_ms, report.max_ms,
      report.mean_ms);
  if (n > 0 && report.server_samples > 0 &&
      static_cast<std::size_t>(n) < sizeof(buffer)) {
    std::snprintf(buffer + n, sizeof(buffer) - static_cast<std::size_t>(n),
                  "server ms   p50 %.3f  p90 %.3f  p99 %.3f  p99.9 %.3f  "
                  "max %.3f  mean %.3f  (echoed by %llu replies; "
                  "client - server = queueing + transport)\n",
                  report.server_p50_ms, report.server_p90_ms,
                  report.server_p99_ms, report.server_p999_ms,
                  report.server_max_ms, report.server_mean_ms,
                  static_cast<unsigned long long>(report.server_samples));
  }
  return buffer;
}

}  // namespace asimt::serve
