#include "obs/selfmetrics.h"

#include "telemetry/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace asimt::obs {

ProcessMetrics sample_process_metrics() {
  ProcessMetrics m;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    m.max_rss_bytes = usage.ru_maxrss;  // bytes on Darwin
#else
    m.max_rss_bytes = usage.ru_maxrss * 1024LL;  // KiB on Linux
#endif
    m.cpu_user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                         static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    m.cpu_sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                        static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
  }
#endif
  return m;
}

void publish_process_metrics() {
  if (!telemetry::enabled()) return;
  const ProcessMetrics m = sample_process_metrics();
  telemetry::set_gauge("process.max_rss_bytes",
                       static_cast<double>(m.max_rss_bytes));
  telemetry::set_gauge("process.cpu_user_seconds", m.cpu_user_seconds);
  telemetry::set_gauge("process.cpu_sys_seconds", m.cpu_sys_seconds);
}

json::Value to_json(const ProcessMetrics& m) {
  json::Value v = json::Value::object();
  v.set("max_rss_bytes", m.max_rss_bytes);
  v.set("cpu_user_seconds", m.cpu_user_seconds);
  v.set("cpu_sys_seconds", m.cpu_sys_seconds);
  return v;
}

}  // namespace asimt::obs
