// Statistics kernel for the bench harness: robust location/spread plus a
// seeded-bootstrap confidence interval.
//
// Wall-clock samples on a shared machine are contaminated by scheduler
// noise, so the harness reports *robust* statistics — median and MAD
// (median absolute deviation) — rather than mean/stddev, and rejects gross
// outliers (beyond median ± k·MAD) before summarizing. The 95% CI on the
// median comes from a percentile bootstrap driven by a fully specified
// SplitMix64 stream: the same samples and the same seed produce
// byte-identical CIs on every platform, which is what lets tests pin them
// and lets two artifacts from the same data diff clean.
//
// Everything here is pure: no clocks, no globals.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/json.h"

namespace asimt::obs {

struct StatsOptions {
  // Bootstrap resampling of the median: `resamples` draws, percentile CI at
  // `confidence`. The stream is a pure function of `seed`.
  std::uint64_t seed = 42;
  int resamples = 200;
  double confidence = 0.95;
  // Samples outside median ± outlier_mad_k · MAD are rejected before the
  // summary (a page fault storm should not shift the CI). 0 disables
  // rejection. With MAD == 0 (all-equal samples) nothing is rejected.
  double outlier_mad_k = 8.0;
};

struct SampleStats {
  std::size_t n = 0;                  // samples kept
  std::size_t outliers_rejected = 0;  // samples dropped by the MAD fence
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double mad = 0.0;     // median(|x - median|)
  double ci_lo = 0.0;   // bootstrap CI on the median
  double ci_hi = 0.0;
};

// Median of `v` (average of the two middle elements for even n); 0 for
// empty input. Takes a copy because selection reorders.
double median(std::vector<double> v);

// Median absolute deviation around `center`.
double mad(const std::vector<double>& v, double center);

// Full summary: outlier rejection, then order statistics, then the seeded
// bootstrap. n == 1 degenerates cleanly (mad 0, CI collapsed on the value).
SampleStats summarize(const std::vector<double>& samples,
                      const StatsOptions& options = {});

// {"n":..,"outliers_rejected":..,"min":..,"max":..,"mean":..,"median":..,
//  "mad":..,"ci95_lo":..,"ci95_hi":..}
json::Value to_json(const SampleStats& s);
SampleStats stats_from_json(const json::Value& v);

}  // namespace asimt::obs
