#include "serve/server.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obsv/span.h"
#include "telemetry/metrics.h"

namespace asimt::serve {

namespace {

enum class SendStatus {
  kOk,
  kTimeout,  // peer stopped draining within the write deadline
  kClosed,   // peer hung up (EPIPE/ECONNRESET) or hard error
};

// Writes all of `data` to a nonblocking fd, riding out EINTR and short
// writes; when the kernel buffer fills, waits for POLLOUT bounded by
// `timeout_ms` (0 = wait forever). MSG_NOSIGNAL turns a peer that vanished
// mid-reply into EPIPE instead of fatal SIGPIPE (the daemon must outlive any
// one client — docs/SERVING.md). A stalled reader — a client that sent a
// request but never drains the reply — therefore blocks its connection for
// at most the deadline, not forever.
SendStatus send_all(int fd, const char* data, std::size_t len,
                    std::uint64_t timeout_ms) {
  const std::uint64_t deadline_ns =
      timeout_ms == 0 ? 0 : obsv::now_ns() + timeout_ms * 1'000'000ull;
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        int wait_ms = -1;
        if (deadline_ns != 0) {
          const std::uint64_t now = obsv::now_ns();
          if (now >= deadline_ns) return SendStatus::kTimeout;
          wait_ms =
              static_cast<int>((deadline_ns - now) / 1'000'000ull) + 1;
        }
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0 && errno != EINTR) return SendStatus::kClosed;
        if (ready == 0) return SendStatus::kTimeout;
        continue;
      }
      return SendStatus::kClosed;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return SendStatus::kOk;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)), service_(options_.service) {}

Server::~Server() {
  notify_stop();
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
    if (connection->fd >= 0) ::close(connection->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

bool Server::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + options_.socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    error_ = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  // The wake pipe must never block the signal handler's single-byte write.
  ::fcntl(wake_write_fd_, F_SETFL, O_NONBLOCK);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a crashed daemon refuses bind; connect() tells
  // a live server (ECONNREFUSED-free) apart from a leftover inode.
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno == EADDRINUSE) {
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool alive =
          probe >= 0 && ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                                  sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (alive) {
        error_ = "another server is already listening on " +
                 options_.socket_path;
        return false;
      }
      ::unlink(options_.socket_path.c_str());
      if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        error_ = "bind " + options_.socket_path + ": " + std::strerror(errno);
        return false;
      }
    } else {
      error_ = "bind " + options_.socket_path + ": " + std::strerror(errno);
      return false;
    }
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

std::uint64_t Server::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("poll: ") + std::strerror(errno);
      break;
    }
    if (fds[1].revents != 0) break;  // notify_stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      error_ = std::string("accept: ") + std::strerror(errno);
      break;
    }
    if (options_.max_conns > 0) {
      reap_finished_connections();
      std::size_t live = 0;
      {
        std::lock_guard<std::mutex> lock(connections_mu_);
        live = connections_.size();
      }
      if (live >= options_.max_conns) {
        // Shed at the door: one structured reply explaining why (best
        // effort — the socket buffer of a fresh connection always has
        // room), then close. No thread is spawned, so a connection storm
        // cannot multiply threads past the cap.
        service_.overload().shed_connections.fetch_add(
            1, std::memory_order_relaxed);
        const std::string reply =
            service_.error_reply(
                "overloaded", "server at --max-conns capacity",
                static_cast<long long>(service_.options().retry_after_ms)) +
            "\n";
        [[maybe_unused]] const ssize_t n = ::send(
            client, reply.data(), reply.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
        ::close(client);
        continue;
      }
    }
    ++connections_served_;
    telemetry::count("serve.connections");
    auto connection = std::make_unique<Connection>();
    connection->fd = client;
    connection->id = connections_served_;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
    reap_finished_connections();
  }

  // Graceful drain: no new connections, then unblock every live reader.
  // SHUT_RD makes a blocked recv() return 0 (protocol EOF) while leaving
  // the write side open, so in-flight replies still reach their client.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RD);
    }
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  return connections_served_;
}

void Server::notify_stop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    // Async-signal-safe; a full pipe already guarantees a wakeup.
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Server::handle_connection(Connection* connection) {
  const int fd = connection->fd;
  // Nonblocking from here on: reads are poll-paced so a partial line can be
  // deadlined (slow loris), writes are poll-paced so a stalled reader can be
  // deadlined — the two halves of the per-request socket timeout.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  const std::uint64_t timeout_ms = service_.options().request_timeout_ms;
  OverloadCounters& overload = service_.overload();
  obsv::Recorder& recorder = service_.recorder();
  const bool observing = recorder.enabled();
  // The connection's flight ring (nullptr when no flight recorder is
  // configured — spans then feed the latency matrix and slow log only).
  obsv::SpanRing* ring =
      observing ? recorder.acquire_ring(connection->id) : nullptr;
  std::uint64_t span_seq = 0;
  // When the read stage of request N starts: at connect, and thereafter the
  // instant reply N-1 finished — so read_ns measures the wait for bytes
  // (client think time + transfer), never server work.
  std::uint64_t read_start = observing ? obsv::now_ns() : 0;
  std::string buffer;
  char chunk[4096];
  // A single line may legitimately reach max_text_bytes (the program text
  // is JSON-escaped inline); beyond the service's own guard we only bound
  // the buffer enough to keep a garbage-spewing client from ballooning it.
  const std::size_t max_line =
      service_.options().max_text_bytes * 2 + (1 << 16);
  bool overlong = false;
  // When the pending partial line started arriving. An *idle* connection
  // (empty buffer) is never deadlined — only one that began a request and
  // stopped feeding it, the slow-loris shape.
  std::uint64_t line_start_ns = 0;

  auto send_reply = [&](const std::string& reply) {
    switch (send_all(fd, reply.data(), reply.size(), timeout_ms)) {
      case SendStatus::kOk:
        return true;
      case SendStatus::kTimeout:
        overload.write_timeouts.fetch_add(1, std::memory_order_relaxed);
        return false;
      case SendStatus::kClosed:
        return false;  // client hung up mid-reply: drop the connection
    }
    return false;
  };

  bool open = true;
  while (open) {
    int wait_ms = -1;
    if (timeout_ms > 0 && !buffer.empty()) {
      const std::uint64_t deadline_ns =
          line_start_ns + timeout_ms * 1'000'000ull;
      const std::uint64_t now = obsv::now_ns();
      if (now >= deadline_ns) {
        // Slow loris: a request line started but never finished within the
        // budget. One structured reply (best effort), then evict.
        overload.read_timeouts.fetch_add(1, std::memory_order_relaxed);
        const std::string reply =
            service_.error_reply("timeout",
                                 "request line not completed within " +
                                     std::to_string(timeout_ms) + " ms") +
            "\n";
        send_reply(reply);
        break;
      }
      wait_ms = static_cast<int>((deadline_ns - now) / 1'000'000ull) + 1;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // poll deadline: the loop re-checks above
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // client reset; nothing sensible left to do
    }
    if (n == 0) break;  // EOF: client done (or drain shut the read side)
    if (buffer.empty()) line_start_ns = obsv::now_ns();
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         open && nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (overlong) {
        // The tail of a line we already rejected: swallow up to its newline
        // and resynchronize on the next line.
        overlong = false;
        continue;
      }
      if (line.empty()) continue;  // blank keep-alives are fine
      obsv::SpanBuilder sb;
      if (observing) sb.begin(connection->id, ++span_seq, read_start);
      const std::string reply = service_.handle_line(line, &sb) + "\n";
      open = send_reply(reply);
      if (observing) {
        sb.mark(obsv::Stage::kWrite);
        // Terminal record (flight ring + slow log). The latency matrix was
        // already fed inside handle_line, before the reply bytes left.
        recorder.record(sb.span(), ring);
        read_start = obsv::now_ns();
      }
    }
    buffer.erase(0, start);
    // Whatever remains is the start of the *next* request: its read clock
    // starts now, not when the previous requests' bytes arrived.
    if (start > 0 && !buffer.empty()) line_start_ns = obsv::now_ns();
    if (open && buffer.size() > max_line) {
      // No newline within the budget: reject once, then keep discarding
      // input until the next newline so the stream resynchronizes (one
      // oversized line gets exactly one error reply, however many reads it
      // spans).
      if (!overlong) {
        overlong = true;
        const std::string reply =
            service_.error_reply("bad_request", "request line too large") +
            "\n";
        open = send_reply(reply);
      }
      buffer.clear();
    }
  }
  ::close(fd);
  recorder.release_ring(ring);
  connection->fd = -1;
  connection->done.store(true, std::memory_order_release);
}

void Server::reap_finished_connections() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire) &&
        (*it)->thread.joinable()) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

std::atomic<Server*> g_signal_server{nullptr};

void stop_signal_handler(int) {
  if (Server* server = g_signal_server.load(std::memory_order_acquire)) {
    server->notify_stop();
  }
}

}  // namespace

void install_stop_signal_handlers(Server* server) {
  g_signal_server.store(server, std::memory_order_release);
  struct sigaction action {};
  if (server != nullptr) {
    action.sa_handler = stop_signal_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: poll() must return EINTR
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace asimt::serve
