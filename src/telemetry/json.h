// Minimal zero-dependency JSON value model, serializer, and parser.
//
// Backbone of the telemetry exporters: metric snapshots, JSONL trace events,
// experiment results, and the BENCH_*.json perf trajectory all go through
// this one representation, and tests parse the emitted text back to verify
// round-trips. Objects preserve insertion order so emitted documents are
// deterministic and diffable. Integers are kept distinct from doubles so
// 64-bit counters survive a round-trip exactly.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asimt::json {

class Value;

using Array = std::vector<Value>;
// Insertion-ordered; lookup is linear (telemetry objects are small).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(int i) : type_(Type::kInt), int_(i) {}
  Value(unsigned i) : type_(Type::kInt), int_(i) {}
  Value(long i) : type_(Type::kInt), int_(i) {}
  Value(unsigned long i) : type_(Type::kInt), int_(static_cast<long long>(i)) {}
  Value(long long i) : type_(Type::kInt), int_(i) {}
  Value(unsigned long long i) : type_(Type::kInt), int_(static_cast<long long>(i)) {}
  Value(double d) : type_(Type::kDouble), double_(d) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::kString), string_(s) {}
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { expect(Type::kBool); return bool_; }
  long long as_int() const {
    if (type_ == Type::kDouble) return static_cast<long long>(double_);
    expect(Type::kInt);
    return int_;
  }
  double as_double() const {
    if (type_ == Type::kInt) return static_cast<double>(int_);
    expect(Type::kDouble);
    return double_;
  }
  const std::string& as_string() const { expect(Type::kString); return string_; }
  const Array& as_array() const { expect(Type::kArray); return array_; }
  Array& as_array() { expect(Type::kArray); return array_; }
  const Object& as_object() const { expect(Type::kObject); return object_; }
  Object& as_object() { expect(Type::kObject); return object_; }

  // Array append.
  void push_back(Value v) { as_array().push_back(std::move(v)); }

  // Object member set (replaces an existing key) and lookup.
  void set(std::string_view key, Value v);
  // Pointer to the member, or nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  // Member access that throws on a missing key — for tests and readers that
  // treat absence as corruption.
  const Value& at(std::string_view key) const;

  // Serializes to compact JSON (indent < 0) or pretty-printed with the given
  // indent width.
  std::string dump(int indent = -1) const;

  bool operator==(const Value& other) const;

 private:
  void expect(Type t) const {
    if (type_ != t) throw std::runtime_error("json: wrong value type");
  }

  Type type_;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Parses one JSON document; throws ParseError on malformed input or
// trailing garbage.
Value parse(std::string_view text);

// Parses a JSON-Lines document: one JSON value per non-empty line.
std::vector<Value> parse_lines(std::string_view text);

// Escapes `s` as the *inside* of a JSON string literal (no quotes added).
std::string escape(std::string_view s);

}  // namespace asimt::json
