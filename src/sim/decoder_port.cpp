#include "sim/decoder_port.h"

namespace asimt::sim {

void DecoderPeripheral::reset() {
  tt_ = core::TtConfig{5, {}};
  bbit_.clear();
  tt_index_ = 0;
  staged_entry_.fill(0);
  staged_pc_ = 0;
  decoder_.reset();
}

void DecoderPeripheral::store(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kCtrl:
      if (value & 2u) reset();
      if (value & 1u) {
        decoder_.emplace(tt_, bbit_);
      } else if (!(value & 2u)) {
        decoder_.reset();
      }
      break;
    case kBlockSize:
      if (value < 2 || value > 16) {
        throw MemoryError("decoder peripheral: bad block size");
      }
      tt_.block_size = static_cast<int>(value);
      break;
    case kTtIndex:
      tt_index_ = value;
      break;
    case kTtData0:
    case kTtData1:
    case kTtData2:
      staged_entry_[(offset - kTtData0) / 4] = value;
      break;
    case kTtData3: {
      staged_entry_[3] = value;
      if (tt_index_ >= tt_.entries.size()) tt_.entries.resize(tt_index_ + 1);
      tt_.entries[tt_index_] = core::unpack_tt_entry(staged_entry_);
      ++tt_index_;  // burst-friendly auto-increment
      break;
    }
    case kBbitPc:
      staged_pc_ = value;
      break;
    case kBbitIndex: {
      if (value >= tt_.entries.size()) {
        throw MemoryError("decoder peripheral: BBIT index past the TT");
      }
      bbit_.push_back(core::BbitEntry{
          staged_pc_, static_cast<std::uint16_t>(value)});
      break;
    }
    default:
      throw MemoryError("decoder peripheral: store to unmapped register");
  }
}

}  // namespace asimt::sim
