#include "core/transform.h"

#include <gtest/gtest.h>

#include <set>

namespace asimt::core {
namespace {

TEST(Transform, DefaultIsIdentity) {
  const Transform t;
  EXPECT_EQ(t, kIdentity);
  EXPECT_EQ(t.apply(0, 1), 0);
  EXPECT_EQ(t.apply(1, 0), 1);
}

TEST(Transform, TruthTablesMatchNames) {
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      EXPECT_EQ(kIdentity.apply(x, y), x);
      EXPECT_EQ(kInvert.apply(x, y), 1 - x);
      EXPECT_EQ(kHistory.apply(x, y), y);
      EXPECT_EQ(kNotHistory.apply(x, y), 1 - y);
      EXPECT_EQ(kXor.apply(x, y), x ^ y);
      EXPECT_EQ(kXnor.apply(x, y), 1 - (x ^ y));
      EXPECT_EQ(kNor.apply(x, y), (x | y) ? 0 : 1);
      EXPECT_EQ(kNand.apply(x, y), (x & y) ? 0 : 1);
      EXPECT_EQ(kConst0.apply(x, y), 0);
      EXPECT_EQ(kConst1.apply(x, y), 1);
      EXPECT_EQ(kAnd.apply(x, y), x & y);
      EXPECT_EQ(kOr.apply(x, y), x | y);
    }
  }
}

TEST(Transform, AllSixteenDistinct) {
  std::set<unsigned> tables;
  for (Transform t : kAllTransforms) tables.insert(t.truth_table());
  EXPECT_EQ(tables.size(), 16u);
}

TEST(Transform, PaperSubsetIsPrefixOfAll) {
  for (std::size_t i = 0; i < kPaperSubset.size(); ++i) {
    EXPECT_EQ(kPaperSubset[i], kAllTransforms[i]);
  }
}

TEST(Transform, DualMatchesPaperSymmetry) {
  // §5.2: inverting all bits of X and X~ swaps XOR<->XNOR and NOR<->NAND
  // while keeping identity and inversion intact.
  EXPECT_EQ(kXor.dual(), kXnor);
  EXPECT_EQ(kXnor.dual(), kXor);
  EXPECT_EQ(kNor.dual(), kNand);
  EXPECT_EQ(kNand.dual(), kNor);
  EXPECT_EQ(kIdentity.dual(), kIdentity);
  EXPECT_EQ(kInvert.dual(), kInvert);
  EXPECT_EQ(kHistory.dual(), kHistory);
  EXPECT_EQ(kNotHistory.dual(), kNotHistory);
}

TEST(Transform, DualIsInvolution) {
  for (unsigned tt = 0; tt < 16; ++tt) {
    const Transform t{tt};
    EXPECT_EQ(t.dual().dual(), t);
  }
}

TEST(Transform, DualDefinition) {
  // τ'(x, y) = ¬τ(¬x, ¬y) pointwise, for every function.
  for (unsigned tt = 0; tt < 16; ++tt) {
    const Transform t{tt};
    const Transform d = t.dual();
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        EXPECT_EQ(d.apply(x, y), 1 - t.apply(1 - x, 1 - y));
      }
    }
  }
}

TEST(Transform, ExactlyFourInvertibleInX) {
  int count = 0;
  for (Transform t : kAllTransforms) count += t.invertible_in_x();
  EXPECT_EQ(count, 4);
  EXPECT_TRUE(kIdentity.invertible_in_x());
  EXPECT_TRUE(kInvert.invertible_in_x());
  EXPECT_TRUE(kXor.invertible_in_x());
  EXPECT_TRUE(kXnor.invertible_in_x());
  EXPECT_FALSE(kNor.invertible_in_x());
  EXPECT_FALSE(kHistory.invertible_in_x());
}

TEST(Transform, PaperSubsetIndex) {
  EXPECT_EQ(paper_subset_index(kIdentity), 0);
  EXPECT_EQ(paper_subset_index(kNand), 7);
  EXPECT_EQ(paper_subset_index(kConst0), -1);
  EXPECT_EQ(paper_subset_index(kAnd), -1);
}

TEST(Transform, NamesAreUnique) {
  std::set<std::string> names;
  for (Transform t : kAllTransforms) names.insert(t.name());
  EXPECT_EQ(names.size(), 16u);
  EXPECT_EQ(kNotHistory.name(), "~y");
  EXPECT_EQ(kXor.name(), "xor");
}

TEST(Transform, TruthTableMasksToFourBits) {
  EXPECT_EQ(Transform{0xFF}.truth_table(), 0xFu);
}

TEST(Transform, OrderingIsByTruthTable) {
  EXPECT_LT(Transform{0}, Transform{1});
  EXPECT_EQ(Transform{5}, Transform{5});
}

}  // namespace
}  // namespace asimt::core
