#include "bitstream/bitseq.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace asimt::bits {

BitSeq::BitSeq(std::size_t n, int fill)
    : bits_(n, static_cast<std::uint8_t>(fill & 1)) {}

BitSeq BitSeq::from_stream_string(std::string_view s) {
  BitSeq seq;
  seq.bits_.reserve(s.size());
  for (char c : s) {
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitSeq: expected only '0'/'1' characters");
    }
    seq.bits_.push_back(static_cast<std::uint8_t>(c - '0'));
  }
  return seq;
}

BitSeq BitSeq::from_figure_string(std::string_view s) {
  BitSeq seq = from_stream_string(s);
  std::reverse(seq.bits_.begin(), seq.bits_.end());
  return seq;
}

BitSeq BitSeq::from_word(std::uint64_t word, std::size_t n) {
  BitSeq seq;
  seq.bits_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seq.bits_.push_back(static_cast<std::uint8_t>((word >> i) & 1));
  }
  return seq;
}

int BitSeq::transitions() const {
  if (bits_.empty()) return 0;
  return transitions_in(0, bits_.size() - 1);
}

int BitSeq::transitions_in(std::size_t first, std::size_t last) const {
  int count = 0;
  for (std::size_t i = first; i < last; ++i) {
    count += bits_[i] != bits_[i + 1];
  }
  return count;
}

BitSeq BitSeq::slice(std::size_t first, std::size_t len) const {
  BitSeq out;
  out.bits_.assign(bits_.begin() + static_cast<std::ptrdiff_t>(first),
                   bits_.begin() + static_cast<std::ptrdiff_t>(first + len));
  return out;
}

std::uint64_t BitSeq::to_word(std::size_t n) const {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n; ++i) {
    word |= static_cast<std::uint64_t>(bits_[i]) << i;
  }
  return word;
}

std::string BitSeq::to_stream_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (std::uint8_t b : bits_) s.push_back(static_cast<char>('0' + b));
  return s;
}

std::string BitSeq::to_figure_string() const {
  std::string s = to_stream_string();
  std::reverse(s.begin(), s.end());
  return s;
}

int word_transitions(std::uint64_t word, int k) {
  if (k <= 1) return 0;
  // XOR of the sequence with itself shifted by one position marks every
  // adjacent differing pair.
  const std::uint64_t mask = (k >= 64) ? ~0ULL : ((1ULL << (k - 1)) - 1);
  return std::popcount((word ^ (word >> 1)) & mask);
}

BitSeq vertical_line(std::span<const std::uint32_t> words, unsigned line) {
  BitSeq seq;
  for (std::size_t i = 0; i < words.size(); ++i) {
    seq.push_back(static_cast<int>((words[i] >> line) & 1u));
  }
  return seq;
}

std::vector<std::uint32_t> from_vertical_lines(std::span<const BitSeq> lines,
                                               std::size_t count) {
  if (lines.size() != 32) {
    throw std::invalid_argument("from_vertical_lines: expected 32 lines");
  }
  for (const BitSeq& line : lines) {
    if (line.size() != count) {
      throw std::invalid_argument("from_vertical_lines: line length mismatch");
    }
  }
  std::vector<std::uint32_t> words(count, 0);
  for (unsigned b = 0; b < 32; ++b) {
    for (std::size_t i = 0; i < count; ++i) {
      words[i] |= static_cast<std::uint32_t>(lines[b][i]) << b;
    }
  }
  return words;
}

long long total_bus_transitions(std::span<const std::uint32_t> words) {
  long long total = 0;
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    total += std::popcount(words[i] ^ words[i + 1]);
  }
  return total;
}

}  // namespace asimt::bits
