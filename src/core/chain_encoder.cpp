#include "core/chain_encoder.h"

#include <limits>
#include <optional>
#include <stdexcept>

#include "core/block_code.h"
#include "parallel/pool.h"
#include "telemetry/metrics.h"

namespace asimt::core {

namespace {

// A candidate (code word, transform) pair for one block.
struct BlockChoice {
  std::uint32_t code = 0;
  Transform tau;
  int cost = 0;  // transitions inside the stored block
};

// Finds the cheapest feasible choice for a block whose original bits are the
// low `len` bits of `word` (bit 0 = overlap/first bit) given that the stored
// value of the first bit is `s_in`. Returns nullopt when no transform in
// `allowed` can realize the block (possible only for exotic transform sets
// lacking the identity).
std::optional<BlockChoice> best_choice(std::uint32_t word, int len, int s_in,
                                       bool chain_initial,
                                       std::span<const Transform> allowed) {
  if (chain_initial && s_in != static_cast<int>(word & 1u)) {
    return std::nullopt;  // chain-initial blocks store their first bit plain
  }
  std::optional<BlockChoice> best;
  int best_tau_rank = 0;
  const std::uint32_t rest_count = std::uint32_t{1} << (len - 1);
  for (std::uint32_t rest = 0; rest < rest_count; ++rest) {
    const std::uint32_t code =
        static_cast<std::uint32_t>(s_in & 1) | (rest << 1);
    const int cost = bits::word_transitions(code, len);
    for (std::size_t ti = 0; ti < allowed.size(); ++ti) {
      const Transform tau = allowed[ti];
      const std::uint32_t decoded =
          chain_initial
              ? decode_block(tau, code, len)
              : decode_block_overlapped(tau, code, static_cast<int>(word & 1u),
                                        len);
      if (decoded != word) continue;
      const bool better =
          !best || cost < best->cost ||
          (cost == best->cost &&
           (static_cast<int>(ti) < best_tau_rank ||
            (static_cast<int>(ti) == best_tau_rank && code < best->code)));
      if (better) {
        best = BlockChoice{code, tau, cost};
        best_tau_rank = static_cast<int>(ti);
      }
      break;  // earlier transforms in `allowed` were already tried for this code
    }
  }
  return best;
}

std::uint32_t window_word(const bits::BitSeq& seq, std::size_t start, int len) {
  std::uint32_t w = 0;
  for (int i = 0; i < len; ++i) {
    w |= static_cast<std::uint32_t>(seq[start + static_cast<std::size_t>(i)])
         << i;
  }
  return w;
}

void write_code(bits::BitSeq& stored, std::size_t start, int len,
                std::uint32_t code) {
  for (int i = 0; i < len; ++i) {
    stored.set(start + static_cast<std::size_t>(i),
               static_cast<int>((code >> i) & 1u));
  }
}

}  // namespace

ChainEncoder::ChainEncoder(ChainOptions options) : options_(options) {
  if (options_.block_size < 2 || options_.block_size > 16) {
    throw std::invalid_argument("chain block size must be in [2, 16]");
  }
  if (options_.allowed.empty()) {
    throw std::invalid_argument("chain encoder needs a non-empty transform set");
  }
}

std::vector<ChainBlock> ChainEncoder::partition(std::size_t m, int block_size) {
  std::vector<ChainBlock> blocks;
  if (m == 0) return blocks;
  if (m == 1) {
    blocks.push_back(ChainBlock{0, 1, kIdentity});
    return blocks;
  }
  std::size_t start = 0;
  while (true) {
    const int len = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(block_size), m - start));
    blocks.push_back(ChainBlock{start, len, kIdentity});
    const std::size_t next = start + static_cast<std::size_t>(len) - 1;
    if (m - next <= 1) break;  // nothing but the overlap bit remains
    start = next;
  }
  return blocks;
}

EncodedChain ChainEncoder::encode(const bits::BitSeq& original) const {
  EncodedChain chain;
  switch (options_.strategy) {
    case ChainStrategy::kGreedy: chain = encode_greedy(original); break;
    case ChainStrategy::kOptimalDp: chain = encode_dp(original); break;
    default: throw std::logic_error("unknown chain strategy");
  }
  if (telemetry::enabled()) {
    telemetry::count("encoder.chains_encoded");
    telemetry::count("encoder.chains_split",
                     static_cast<long long>(chain.blocks.size()));
    telemetry::count("encoder.bits_encoded",
                     static_cast<long long>(original.size()));
  }
  return chain;
}

std::vector<EncodedChain> ChainEncoder::encode_many(
    std::span<const bits::BitSeq> originals) const {
  std::vector<EncodedChain> out(originals.size());
  // Below ~1k total bits the per-line searches finish faster than pool
  // dispatch; parallel_for additionally degrades to the same serial loop
  // when jobs == 1 or we are already inside a pool task.
  constexpr std::size_t kMinParallelBits = 1024;
  std::size_t total_bits = 0;
  for (const bits::BitSeq& line : originals) total_bits += line.size();
  if (total_bits < kMinParallelBits) {
    for (std::size_t i = 0; i < originals.size(); ++i) {
      out[i] = encode(originals[i]);
    }
    return out;
  }
  parallel::parallel_for(originals.size(),
                         [&](std::size_t i) { out[i] = encode(originals[i]); });
  return out;
}

EncodedChain ChainEncoder::encode_greedy(const bits::BitSeq& original) const {
  EncodedChain out;
  out.stored = bits::BitSeq(original.size());
  out.blocks = partition(original.size(), options_.block_size);
  if (out.blocks.empty()) return out;
  if (original.size() == 1) {
    out.stored.set(0, original[0]);
    return out;
  }
  int s_in = original[0];
  for (std::size_t bi = 0; bi < out.blocks.size(); ++bi) {
    ChainBlock& block = out.blocks[bi];
    const std::uint32_t word = window_word(original, block.start, block.length);
    const auto choice =
        best_choice(word, block.length, s_in, bi == 0, options_.allowed);
    if (!choice) {
      throw std::logic_error("chain encoder: infeasible block (no identity?)");
    }
    block.tau = choice->tau;
    write_code(out.stored, block.start, block.length, choice->code);
    s_in = static_cast<int>((choice->code >> (block.length - 1)) & 1u);
  }
  return out;
}

EncodedChain ChainEncoder::encode_dp(const bits::BitSeq& original) const {
  EncodedChain out;
  out.stored = bits::BitSeq(original.size());
  out.blocks = partition(original.size(), options_.block_size);
  if (out.blocks.empty()) return out;
  if (original.size() == 1) {
    out.stored.set(0, original[0]);
    return out;
  }

  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  const std::size_t nblocks = out.blocks.size();

  // cost[s]: cheapest total transitions with the current boundary bit stored
  // as s. Backpointers record each block's decision per outgoing state.
  struct Decision {
    std::uint32_t code = 0;
    Transform tau;
    int prev_state = 0;
  };
  std::vector<std::array<Decision, 2>> decisions(nblocks);
  std::array<int, 2> cost = {kInf, kInf};
  cost[original[0]] = 0;  // chain-initial block stores its first bit plain

  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    const ChainBlock& block = out.blocks[bi];
    const std::uint32_t word = window_word(original, block.start, block.length);
    std::array<int, 2> next_cost = {kInf, kInf};
    for (int s_in = 0; s_in < 2; ++s_in) {
      if (cost[s_in] >= kInf) continue;
      // Enumerate every feasible (code, tau); fold into the outgoing state.
      const std::uint32_t rest_count = std::uint32_t{1} << (block.length - 1);
      for (std::uint32_t rest = 0; rest < rest_count; ++rest) {
        const std::uint32_t code =
            static_cast<std::uint32_t>(s_in) | (rest << 1);
        const int block_cost = bits::word_transitions(code, block.length);
        for (Transform tau : options_.allowed) {
          const std::uint32_t decoded =
              bi == 0 ? decode_block(tau, code, block.length)
                      : decode_block_overlapped(
                            tau, code, static_cast<int>(word & 1u),
                            block.length);
          if (decoded != word) continue;
          const int s_out =
              static_cast<int>((code >> (block.length - 1)) & 1u);
          const int total = cost[s_in] + block_cost;
          if (total < next_cost[s_out]) {
            next_cost[s_out] = total;
            decisions[bi][s_out] = Decision{code, tau, s_in};
          }
          break;  // cheaper tau ranks first; cost identical for same code
        }
      }
    }
    cost = next_cost;
  }

  int state = cost[0] <= cost[1] ? 0 : 1;
  if (cost[state] >= kInf) {
    throw std::logic_error("chain encoder DP: no feasible encoding");
  }
  for (std::size_t bi = nblocks; bi-- > 0;) {
    const Decision& d = decisions[bi][state];
    out.blocks[bi].tau = d.tau;
    write_code(out.stored, out.blocks[bi].start, out.blocks[bi].length, d.code);
    state = d.prev_state;
  }
  return out;
}

bits::BitSeq decode_chain(const EncodedChain& chain) {
  const bits::BitSeq& stored = chain.stored;
  bits::BitSeq original(stored.size());
  if (stored.empty()) return original;
  original.set(0, stored[0]);
  int history = stored[0];
  for (const ChainBlock& block : chain.blocks) {
    // History register reloads from the raw stored overlap bit at each block
    // switch (paper §6: "τ uses the encoded bit value ... in the initial
    // instance").
    history = stored[block.start];
    for (int j = 1; j < block.length; ++j) {
      const std::size_t pos = block.start + static_cast<std::size_t>(j);
      const int decoded = block.tau.apply(stored[pos], history);
      original.set(pos, decoded);
      history = decoded;
    }
  }
  return original;
}

}  // namespace asimt::core
