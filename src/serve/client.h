// Clients for the serve protocol.
//
// `Client` is the minimal transport: connect to the daemon's unix socket,
// send request lines, read reply lines. The fd is nonblocking and all I/O is
// poll-paced, so an optional io timeout (set_io_timeout_ms) bounds every
// send and recv — a daemon that stalls mid-reply surfaces as kTimeout, not a
// hung caller. With no timeout configured the behavior is the old blocking
// one. Used by the load generator's connections and the integration tests;
// scripts can speak the same protocol with nothing fancier than `nc -U`.
//
// `RetryingClient` layers deadline propagation and jittered-exponential-
// backoff retries under a retry *budget* on top: transport failures and
// `overloaded` replies are retried (honoring the server's retry_after_ms
// hint), but each retry spends a token from a bucket that only successes
// refill — a persistently failing server exhausts the budget instead of
// being hammered by a retry storm (docs/SERVING.md § Resilience).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace asimt::serve {

class Client {
 public:
  enum class LineResult {
    kLine,     // a full line was produced
    kTimeout,  // io timeout expired first
    kClosed,   // EOF or a hard socket error
  };

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  // Connects to the daemon at `socket_path`. On failure returns false and
  // leaves the reason in error().
  bool connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }
  void close();
  int fd() const { return fd_; }

  // Bounds every subsequent send/recv (0 = wait forever, the default).
  void set_io_timeout_ms(std::uint64_t ms) { io_timeout_ms_ = ms; }

  // Half-closes the write side (SHUT_WR): the daemon sees EOF after the
  // bytes already sent, while replies still flow back — the half-open
  // pattern `tests/serve/server_test.cpp` pins.
  bool shutdown_write();

  // Sends `line` plus the terminating newline. False on a broken pipe or an
  // expired io timeout.
  bool send_line(const std::string& line);

  // Blocks for the next reply line (newline stripped), up to the io timeout.
  // nullopt on EOF, a read error, or timeout — error() tells them apart.
  std::optional<std::string> recv_line();

  // recv_line with an explicit wait bound (-1 = forever, overriding the io
  // timeout) and a three-way result, for callers that must distinguish a
  // slow daemon from a gone one.
  LineResult recv_line_wait(std::string& line, int timeout_ms);

  // One request, one reply.
  std::optional<std::string> roundtrip(const std::string& line) {
    if (!send_line(line)) return std::nullopt;
    return recv_line();
  }

  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  std::uint64_t io_timeout_ms_ = 0;
  std::string buffer_;  // bytes received past the last returned line
  std::string error_;
};

// ---------------------------------------------------------------------------
// Retries under a budget

struct RetryPolicy {
  unsigned max_attempts = 4;          // total tries per roundtrip
  std::uint64_t base_backoff_ms = 10; // first retry's backoff ceiling
  std::uint64_t max_backoff_ms = 500; // exponential growth cap
  std::uint64_t io_timeout_ms = 0;    // per-send/recv bound (0 = forever)
  std::uint64_t seed = 1;             // jitter PRNG seed (deterministic)
  // Token-bucket retry budget: each retry spends one token; each success
  // earns budget_per_success back (capped). A failing server drains the
  // bucket and further retries are refused — no retry storms.
  double initial_budget = 10.0;
  double budget_per_success = 0.1;
  double budget_cap = 10.0;
};

// Full-jitter exponential backoff: uniform in [0, min(max, base << attempt)].
// Deterministic in (rng_state, attempt); exposed for tests.
std::uint64_t jittered_backoff_ms(std::uint64_t& rng_state, unsigned attempt,
                                  const RetryPolicy& policy);

class RetryingClient {
 public:
  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t budget_exhausted = 0;   // retries refused for lack of budget
    std::uint64_t overloaded_replies = 0; // server shed us at least this often
  };

  explicit RetryingClient(std::string socket_path, RetryPolicy policy = {});

  // One request with retries: transport failures (connect/send/recv/timeout)
  // and `overloaded` replies are retried with full-jitter exponential
  // backoff, sleeping at least the server's retry_after_ms hint when one is
  // present. Other error replies (bad_request, timeout, ...) are returned to
  // the caller — retrying a request the server *answered* is the caller's
  // decision. nullopt when every attempt failed or the budget ran dry.
  std::optional<std::string> roundtrip(const std::string& line);

  const Stats& stats() const { return stats_; }
  const std::string& error() const { return error_; }
  Client& client() { return client_; }

 private:
  bool ensure_connected();

  std::string socket_path_;
  RetryPolicy policy_;
  Client client_;
  std::uint64_t rng_state_;
  double budget_;
  Stats stats_;
  std::string error_;
};

}  // namespace asimt::serve
