// Soft-error fault model for the TT/decode datapath (docs/RESILIENCE.md).
//
// The paper's hardware addition is tiny — a Transformation Table, one
// 2-input gate and one history flip-flop per bus line — but every bit of it
// is state a particle strike can flip. This module enumerates the four
// upset-able structures as flat, deterministic site spaces so a campaign can
// address "bit 2 of line 17's τ index in TT entry 3" the same way on every
// platform and at every thread count:
//
//   kTt       TT entry bits: per entry 32 lines x 3 τ-index bits, the E
//             delimiter, and the 5-bit CT tail counter (wire format,
//             core/tt_format.h) — persistent until reprogrammed.
//   kHistory  the 32 per-line history flip-flops, upset between two
//             fetches — transient state, rewritten every cycle.
//   kImage    the stored encoded text image in instruction memory —
//             persistent for the run.
//   kBus      the live instruction-memory data bus — transient, one fetch.
//
// Enumeration order is part of the determinism contract: site_at(i) must
// mean the same physical bit forever (campaign reports are byte-identical
// across --jobs and platforms, and seeds stay replayable across versions).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/hw_tables.h"

namespace asimt::fault {

enum class Target { kTt, kHistory, kImage, kBus };
inline constexpr int kTargetCount = 4;
inline constexpr Target kAllTargets[kTargetCount] = {
    Target::kTt, Target::kHistory, Target::kImage, Target::kBus};

std::string_view target_name(Target target);
std::optional<Target> target_from_name(std::string_view name);

// What the flipped bit physically is. TT entries subdivide: τ-index bits
// leave the E/overlap structure intact (the containment theorem applies),
// E/CT bits corrupt sequencing (the decoder may run past the TT — a
// DecodeFault, which the campaign treats as detected-and-degraded).
enum class SiteKind { kTauBit, kEBit, kCtBit, kHistoryBit, kImageBit, kBusBit };
std::string_view site_kind_name(SiteKind kind);

// One single-bit fault site, addressed within its target's site space.
struct Site {
  Target target = Target::kTt;
  SiteKind kind = SiteKind::kTauBit;
  // kTt*: TT entry index. kHistory/kBus: fetch index the upset precedes/hits.
  // kImage: stored word index.
  std::size_t index = 0;
  // Bus line 0..31 (all kinds except kEBit/kCtBit, where it is 0).
  unsigned line = 0;
  // Bit within the field: τ bit 0..2, CT bit 0..4, otherwise 0.
  unsigned bit = 0;
};

inline constexpr unsigned kTauBitsPerEntry = core::kBusLines * core::kTauIndexBits;
inline constexpr unsigned kCtBits = 5;  // wire format (core/tt_format.h)
inline constexpr unsigned kTtBitsPerEntry = kTauBitsPerEntry + 1 + kCtBits;

// Number of eligible single-bit sites for `target` on a basic block of
// `words` instructions whose encoding uses `tt_entries` TT entries. History
// upsets are modeled between consecutive fetches (an upset before fetch 0
// hits flip-flops that the chain-initial plain word is about to overwrite,
// so fetch indices 1..words-1 are the observable sites).
std::size_t site_count(Target target, std::size_t words, std::size_t tt_entries);

// The site at flat `index` in [0, site_count). Deterministic enumeration:
// kTt: entry-major, then τ bits line-major (line * 3 + bit), then E, then CT
// bits; kHistory/kImage/kBus: index-major, then line.
Site site_at(Target target, std::size_t words, std::size_t tt_entries,
             std::size_t index);

// Applies a kTt-target site to an in-memory TT (flips the addressed bit).
void apply_tt_fault(core::TtConfig& tt, const Site& site);

// Applies a kImage-target site to a stored word vector.
void apply_image_fault(std::vector<std::uint32_t>& words, const Site& site);

}  // namespace asimt::fault
