#include "sim/icache.h"

#include <gtest/gtest.h>

#include <random>

namespace asimt::sim {
namespace {

TextImage make_image(std::size_t words, std::uint32_t base = 0x1000,
                     std::uint32_t seed = 1) {
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> data(words);
  for (auto& w : data) w = rng();
  return TextImage(base, std::move(data));
}

TEST(ICache, ColdMissThenHits) {
  InstructionCache cache({16, 4, 1});
  const TextImage image = make_image(64);
  EXPECT_FALSE(cache.access(0x1000, image));
  EXPECT_TRUE(cache.access(0x1000, image));
  EXPECT_TRUE(cache.access(0x1004, image));  // same 16-byte line
  EXPECT_TRUE(cache.access(0x100C, image));
  EXPECT_FALSE(cache.access(0x1010, image));  // next line
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().refill_words, 2u * 4u);
}

TEST(ICache, LoopFitsAfterFirstIteration) {
  InstructionCache cache({16, 64, 2});
  const TextImage image = make_image(256);
  // A 32-instruction loop executed 10 times.
  for (int iter = 0; iter < 10; ++iter) {
    for (std::uint32_t pc = 0x1000; pc < 0x1000 + 128; pc += 4) {
      cache.access(pc, image);
    }
  }
  EXPECT_EQ(cache.stats().misses, 128u / 16u);  // cold misses only
  EXPECT_GT(cache.stats().hit_rate(), 0.97);
}

TEST(ICache, LruEvictionInSet) {
  // 1 set x 2 ways, 16-byte lines: three conflicting lines thrash.
  InstructionCache cache({16, 1, 2});
  const TextImage image = make_image(64, 0x0);
  EXPECT_FALSE(cache.access(0x00, image));  // A
  EXPECT_FALSE(cache.access(0x10, image));  // B
  EXPECT_TRUE(cache.access(0x00, image));   // A hits, B is now LRU
  EXPECT_FALSE(cache.access(0x20, image));  // C evicts B
  EXPECT_TRUE(cache.access(0x00, image));   // A still resident
  EXPECT_FALSE(cache.access(0x10, image));  // B was evicted
}

TEST(ICache, ColdSetFillsWaysInIndexOrder) {
  // Regression: victim selection used to skip way 0's valid bit and lean on
  // its last_used == 0 sentinel, so a cold 2-way set filled way 1 before
  // way 0. The first miss must install into the lowest-index invalid way.
  InstructionCache cache({16, 1, 2});
  const TextImage image = make_image(64, 0x0);
  cache.access(0x00, image);  // A: must land in way 0
  EXPECT_TRUE(cache.way_valid(0, 0));
  EXPECT_FALSE(cache.way_valid(0, 1));
  const std::uint32_t tag_a = cache.way_tag(0, 0);
  cache.access(0x10, image);  // B: way 1 is the remaining invalid way
  EXPECT_TRUE(cache.way_valid(0, 1));
  EXPECT_EQ(cache.way_tag(0, 0), tag_a);  // A was not displaced
  EXPECT_NE(cache.way_tag(0, 1), tag_a);
}

TEST(ICache, FillOrderHoldsForWiderAssociativity) {
  InstructionCache cache({16, 1, 4});
  const TextImage image = make_image(256, 0x0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    // Before the i-th miss, exactly ways [0, i) are valid.
    for (std::uint32_t w = 0; w < 4; ++w) {
      EXPECT_EQ(cache.way_valid(0, w), w < i) << "miss " << i << " way " << w;
    }
    cache.access(i * 0x10, image);
  }
  // All four lines resident: no premature eviction while invalid ways remain.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(cache.access(i * 0x10, image));
  }
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ICache, WayIntrospectionBoundsChecked) {
  InstructionCache cache({16, 4, 2});
  EXPECT_THROW(cache.way_valid(4, 0), std::out_of_range);
  EXPECT_THROW(cache.way_valid(0, 2), std::out_of_range);
  EXPECT_THROW(cache.way_tag(4, 0), std::out_of_range);
  EXPECT_NO_THROW(cache.way_valid(3, 1));
}

TEST(ICache, RefillBusCountsLineBursts) {
  InstructionCache cache({16, 4, 1});
  // A line whose words alternate all-zeros / all-ones: 32 transitions per
  // adjacent pair within the burst.
  TextImage image(0x0, {0x0u, ~0x0u, 0x0u, ~0x0u, 0u, 0u, 0u, 0u});
  cache.access(0x0, image);
  EXPECT_EQ(cache.refill_bus_transitions(), 3 * 32);
  cache.access(0x10, image);  // second line: 0,0,0,0 after prev word ~0? no:
  // refill bus carries ...1111, then 0000 x4: one 32-bit flip entering.
  EXPECT_EQ(cache.refill_bus_transitions(), 3 * 32 + 32);
}

TEST(ICache, OutOfImageRefillsReadZero) {
  InstructionCache cache({16, 4, 1});
  const TextImage image = make_image(2, 0x1000);  // half a line
  EXPECT_FALSE(cache.access(0x1000, image));
  EXPECT_EQ(cache.stats().refill_words, 4u);  // full line streamed anyway
}

TEST(ICache, RefillHookSeesEveryRefillWordInBurstOrder) {
  InstructionCache cache({16, 4, 1});
  const TextImage image = make_image(6, 0x1000);  // line 2 is half outside
  std::vector<std::pair<std::uint32_t, std::uint32_t>> seen;
  cache.set_refill_hook([&](std::uint32_t addr, std::uint32_t word) {
    seen.emplace_back(addr, word);
  });

  cache.access(0x1000, image);  // miss: one 4-word burst
  cache.access(0x1004, image);  // hit: the hook must not fire
  cache.access(0x1010, image);  // miss: burst straddles the image end

  ASSERT_EQ(seen.size(), cache.stats().refill_words);
  ASSERT_EQ(seen.size(), 8u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    const std::uint32_t addr = seen[i].first;
    EXPECT_EQ(addr, 0x1000u + 4 * static_cast<std::uint32_t>(i));
    EXPECT_EQ(seen[i].second,
              image.contains(addr) ? image.word_at(addr) : 0u);
  }

  // The hook observes the exact refill-bus stream: replaying it through a
  // fresh monitor reproduces the cache's own refill transition count.
  BusMonitor replay;
  for (const auto& pair : seen) replay.observe(pair.second);
  EXPECT_EQ(replay.total_transitions(), cache.refill_bus_transitions());
}

TEST(ICache, ValidatesConfig) {
  EXPECT_THROW(InstructionCache({12, 4, 1}), std::invalid_argument);
  EXPECT_THROW(InstructionCache({16, 3, 1}), std::invalid_argument);
  EXPECT_THROW(InstructionCache({16, 4, 0}), std::invalid_argument);
  EXPECT_NO_THROW(InstructionCache({4, 1, 1}));
}

TEST(ICache, HitRateStatssaneOnRandomAccess) {
  InstructionCache cache({16, 16, 2});
  const TextImage image = make_image(1024, 0x0);
  std::mt19937 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    cache.access((rng() % 1024) * 4, image);
  }
  EXPECT_EQ(cache.stats().accesses, 10'000u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 10'000u);
  // 128 cache words over a 1024-word footprint: hit rate near 1/8 plus
  // line locality; just bound it away from degenerate extremes.
  EXPECT_GT(cache.stats().hit_rate(), 0.02);
  EXPECT_LT(cache.stats().hit_rate(), 0.6);
}

}  // namespace
}  // namespace asimt::sim
