#include "baselines/opcode_remap.h"

#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <set>

namespace asimt::baselines {
namespace {

std::uint32_t word_with_opcode(unsigned opcode) { return opcode << 26; }

TEST(OpcodeRemap, IdentityMappingReproducesRawTransitions) {
  OpcodeRemapper remapper;
  const unsigned stream[] = {0x08, 0x23, 0x08, 0x2B, 0x05};
  long long expected = 0;
  for (std::size_t i = 0; i < std::size(stream); ++i) {
    remapper.observe(word_with_opcode(stream[i]));
    if (i > 0) expected += std::popcount(stream[i - 1] ^ stream[i]);
  }
  EXPECT_EQ(remapper.field_transitions(OpcodeRemapper::identity_mapping()),
            expected);
  EXPECT_EQ(remapper.pairs_observed(), std::size(stream) - 1);
}

TEST(OpcodeRemap, SolveReturnsAPermutation) {
  OpcodeRemapper remapper;
  std::mt19937 rng(5);
  for (int i = 0; i < 10'000; ++i) remapper.observe(rng());
  const auto mapping = remapper.solve();
  std::set<std::uint8_t> codes(mapping.begin(), mapping.end());
  EXPECT_EQ(codes.size(), OpcodeRemapper::kOpcodes);
}

TEST(OpcodeRemap, NeverWorseThanIdentity) {
  // Greedy places heavy opcodes first, so on any stream the remap is at
  // least as good as raw MIPS numbering.
  std::mt19937 rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    OpcodeRemapper remapper;
    // Realistic skew: a few hot opcodes dominate.
    const unsigned hot[] = {0x23, 0x2B, 0x08, 0x04, 0x00};
    for (int i = 0; i < 5000; ++i) {
      const unsigned opcode = (rng() % 4 != 0)
                                  ? hot[rng() % std::size(hot)]
                                  : rng() % OpcodeRemapper::kOpcodes;
      remapper.observe(word_with_opcode(opcode));
    }
    const auto mapping = remapper.solve();
    EXPECT_LE(remapper.field_transitions(mapping),
              remapper.field_transitions(OpcodeRemapper::identity_mapping()));
  }
}

TEST(OpcodeRemap, TwoAlternatingOpcodesLandAtHammingDistanceOne) {
  // lw (0x23) and beq (0x04) sit 4 bits apart in raw MIPS numbering; a
  // stream alternating between them must pull the codes to distance 1.
  OpcodeRemapper remapper;
  for (int i = 0; i < 1000; ++i) {
    remapper.observe(word_with_opcode(i % 2 ? 0x23 : 0x04));
  }
  const auto mapping = remapper.solve();
  EXPECT_EQ(std::popcount(static_cast<unsigned>(mapping[0x23] ^ mapping[0x04])), 1);
  EXPECT_EQ(remapper.field_transitions(mapping), 999);
  EXPECT_EQ(remapper.field_transitions(OpcodeRemapper::identity_mapping()),
            999 * 4);
}

TEST(OpcodeRemap, ConstantStreamCostsNothingUnderAnyMapping) {
  OpcodeRemapper remapper;
  for (int i = 0; i < 100; ++i) remapper.observe(word_with_opcode(0x11));
  EXPECT_EQ(remapper.field_transitions(remapper.solve()), 0);
  EXPECT_EQ(remapper.field_transitions(OpcodeRemapper::identity_mapping()), 0);
}

TEST(OpcodeRemap, EmptyStreamIsHarmless) {
  OpcodeRemapper remapper;
  EXPECT_EQ(remapper.pairs_observed(), 0u);
  EXPECT_EQ(remapper.field_transitions(remapper.solve()), 0);
}

}  // namespace
}  // namespace asimt::baselines
