#include "serve/service.h"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "bitstream/bitseq.h"
#include "core/chain_encoder.h"
#include "isa/assembler.h"
#include "obsv/latency.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace asimt::serve {

namespace {

// Thrown by request handlers; turned into the structured error reply by
// handle_line. `kind` is one of the protocol's error kinds. A non-negative
// retry_after_ms rides into the error object — `overloaded` replies carry it
// so clients know how long to back off before retrying.
struct RequestError {
  const char* kind;
  std::string message;
  long long retry_after_ms = -1;
};

[[noreturn]] void bad_request(std::string message) {
  throw RequestError{"bad_request", std::move(message)};
}

// ---------------------------------------------------------------------------
// Request decoding

struct EncodeParams {
  std::string text;
  int k = 5;
  core::ChainStrategy strategy = core::ChainStrategy::kOptimalDp;
  std::uint8_t strategy_id = 0;       // 0 = dp, 1 = greedy
  std::uint8_t transform_set_id = 0;  // 0 = paper, 1 = all, 2 = invertible
  std::span<const core::Transform> allowed = core::kPaperSubset;
  const char* strategy_name = "dp";
  const char* transforms_name = "paper";
};

const json::Value* find_member(const json::Value& request, std::string_view key) {
  return request.find(key);
}

std::string require_text(const json::Value& request, const ServiceOptions& options) {
  const json::Value* text = find_member(request, "text");
  if (!text) bad_request("missing required field 'text'");
  if (!text->is_string()) bad_request("field 'text' must be a string");
  if (text->as_string().size() > options.max_text_bytes) {
    bad_request("field 'text' exceeds " +
                std::to_string(options.max_text_bytes) + " bytes");
  }
  return text->as_string();
}

EncodeParams decode_encode_params(const json::Value& request,
                                  const ServiceOptions& options) {
  EncodeParams params;
  params.text = require_text(request, options);
  if (const json::Value* k = find_member(request, "k")) {
    if (!k->is_int()) bad_request("field 'k' must be an integer");
    const long long value = k->as_int();
    if (value < options.min_k || value > options.max_k) {
      bad_request("field 'k' must be in [" + std::to_string(options.min_k) +
                  ", " + std::to_string(options.max_k) + "], got " +
                  std::to_string(value));
    }
    params.k = static_cast<int>(value);
  }
  if (const json::Value* strategy = find_member(request, "strategy")) {
    if (!strategy->is_string()) bad_request("field 'strategy' must be a string");
    const std::string& name = strategy->as_string();
    if (name == "dp") {
      params.strategy = core::ChainStrategy::kOptimalDp;
      params.strategy_id = 0;
      params.strategy_name = "dp";
    } else if (name == "greedy") {
      params.strategy = core::ChainStrategy::kGreedy;
      params.strategy_id = 1;
      params.strategy_name = "greedy";
    } else {
      bad_request("field 'strategy' must be 'dp' or 'greedy', got '" + name +
                  "'");
    }
  }
  if (const json::Value* transforms = find_member(request, "transforms")) {
    if (!transforms->is_string()) {
      bad_request("field 'transforms' must be a string");
    }
    const std::string& name = transforms->as_string();
    if (name == "paper") {
      params.allowed = core::kPaperSubset;
      params.transform_set_id = 0;
      params.transforms_name = "paper";
    } else if (name == "all") {
      params.allowed = core::kAllTransforms;
      params.transform_set_id = 1;
      params.transforms_name = "all";
    } else if (name == "invertible") {
      params.allowed = core::kInvertibleSubset;
      params.transform_set_id = 2;
      params.transforms_name = "invertible";
    } else {
      bad_request("field 'transforms' must be 'paper', 'all' or 'invertible', "
                  "got '" + name + "'");
    }
  }
  return params;
}

obsv::Op op_from_name(const std::string& name) {
  if (name == "ping") return obsv::Op::kPing;
  if (name == "encode") return obsv::Op::kEncode;
  if (name == "verify") return obsv::Op::kVerify;
  if (name == "profile") return obsv::Op::kProfile;
  if (name == "stats") return obsv::Op::kStats;
  if (name == "metrics") return obsv::Op::kMetrics;
  if (name == "dump") return obsv::Op::kDump;
  return obsv::Op::kOther;
}

isa::Program assemble_request(const std::string& text) {
  try {
    return isa::assemble(text);
  } catch (const isa::AssemblyError& e) {
    throw RequestError{"assembly", e.what()};
  }
}

// ---------------------------------------------------------------------------
// Content addressing

// FNV-1a 64-bit over the packed bit-line words — the program's *content* in
// exactly the representation the encoder consumes, so textual differences
// that assemble to the same image (comments, label names, spacing) share one
// cache entry.
class Fnv1a {
 public:
  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFFu;
      hash_ *= 0x100000001B3ull;
    }
  }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

std::uint64_t hash_bit_lines(const std::vector<bits::BitSeq>& lines) {
  Fnv1a fnv;
  fnv.mix_u64(lines.size());
  for (const bits::BitSeq& line : lines) {
    fnv.mix_u64(line.size());
    for (const std::uint64_t word : line.words()) fnv.mix_u64(word);
  }
  return fnv.digest();
}

constexpr std::uint8_t kOpEncode = 1;
constexpr std::uint8_t kOpVerify = 2;

CacheKey make_key(const std::vector<bits::BitSeq>& lines,
                  const EncodeParams& params, std::uint8_t op) {
  CacheKey key;
  key.content_hash = hash_bit_lines(lines);
  key.k = params.k;
  key.transform_set = params.transform_set_id;
  key.strategy = params.strategy_id;
  key.op = op;
  return key;
}

// ---------------------------------------------------------------------------
// Result payloads (the cached, byte-identity-critical part of a reply)

json::Value encode_summary(const isa::Program& program,
                           const EncodeParams& params, long long original,
                           long long encoded) {
  json::Value result = json::Value::object();
  result.set("instructions", static_cast<long long>(program.text.size()));
  result.set("k", params.k);
  result.set("strategy", params.strategy_name);
  result.set("transforms", params.transforms_name);
  result.set("original_transitions", original);
  result.set("encoded_transitions", encoded);
  result.set("saved_transitions", original - encoded);
  result.set("reduction_percent",
             original == 0 ? 0.0
                           : 100.0 * static_cast<double>(original - encoded) /
                                 static_cast<double>(original));
  return result;
}

std::string compute_encode_payload(const isa::Program& program,
                                   const std::vector<bits::BitSeq>& lines,
                                   const EncodeParams& params) {
  core::ChainOptions options;
  options.block_size = params.k;
  options.allowed = params.allowed;
  options.strategy = params.strategy;
  const core::ChainEncoder encoder(options);
  long long original = 0;
  long long encoded = 0;
  for (const bits::BitSeq& line : lines) original += line.transitions();
  for (const core::EncodedChain& chain : encoder.encode_many(lines)) {
    encoded += chain.stored.transitions();
  }
  return encode_summary(program, params, original, encoded).dump();
}

std::string compute_verify_payload(const isa::Program& program,
                                   const std::vector<bits::BitSeq>& lines,
                                   const EncodeParams& params) {
  core::ChainOptions options;
  options.block_size = params.k;
  options.allowed = params.allowed;
  options.strategy = params.strategy;
  const core::ChainEncoder encoder(options);
  const std::vector<core::EncodedChain> chains = encoder.encode_many(lines);
  long long original = 0;
  long long encoded = 0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    original += lines[i].transitions();
    encoded += chains[i].stored.transitions();
    if (!(core::decode_chain(chains[i]) == lines[i])) ++mismatches;
  }
  json::Value result = encode_summary(program, params, original, encoded);
  result.set("lines_checked", static_cast<long long>(lines.size()));
  result.set("roundtrip_ok", mismatches == 0);
  result.set("roundtrip_mismatches", static_cast<long long>(mismatches));
  return result.dump();
}

std::string compute_profile_payload(const json::Value& request,
                                    const ServiceOptions& options) {
  const std::string text = require_text(request, options);
  std::uint64_t max_steps = 1'000'000;
  if (const json::Value* steps = find_member(request, "max_steps")) {
    if (!steps->is_int() || steps->as_int() <= 0) {
      bad_request("field 'max_steps' must be a positive integer");
    }
    max_steps = static_cast<std::uint64_t>(steps->as_int());
    if (max_steps > options.max_profile_steps) {
      bad_request("field 'max_steps' exceeds the server cap of " +
                  std::to_string(options.max_profile_steps));
    }
  }
  const isa::Program program = assemble_request(text);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  sim::BusMonitor bus(/*per_line=*/false);
  try {
    cpu.run(max_steps,
            [&](std::uint32_t, std::uint32_t word) { bus.observe(word); });
  } catch (const std::exception& e) {
    throw RequestError{"exec", e.what()};
  }
  json::Value result = json::Value::object();
  result.set("instructions",
             static_cast<long long>(cpu.state().instructions));
  result.set("halted", cpu.state().halted);
  result.set("bus_transitions", bus.total_transitions());
  result.set("transitions_per_fetch",
             static_cast<double>(bus.total_transitions()) /
                 static_cast<double>(
                     std::max<std::uint64_t>(1, bus.words_observed())));
  return result.dump();
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      recorder_(options.recorder),
      admission_(options.admission) {}

std::string Service::error_reply(const char* kind, const std::string& message,
                                 long long retry_after_ms) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  errors_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("serve.requests");
  telemetry::count("serve.errors");
  if (recorder_.enabled()) {
    // Transport-level rejections never reach handle_line; record a span so
    // the metrics op still accounts for every reply the daemon sent.
    obsv::SpanBuilder sb;
    sb.begin(0, 1);
    sb.set_op(obsv::Op::kOther);
    sb.set_error_kind(obsv::error_kind_id(kind));
    recorder_.observe(sb.span());
  }
  json::Value error = json::Value::object();
  error.set("kind", kind);
  error.set("message", message);
  if (retry_after_ms >= 0) error.set("retry_after_ms", retry_after_ms);
  return "{\"id\":null,\"ok\":false,\"error\":" + error.dump() + "}";
}

std::string Service::handle_line(const std::string& line,
                                 obsv::SpanBuilder* sb) {
  const std::uint64_t entry_ns = obsv::now_ns();
  const std::uint64_t seq =
      requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  telemetry::count("serve.requests");

  // Socket-less callers (tests, benches, direct embedding) get a local
  // builder so the latency matrix sees their requests too; the server passes
  // its own with the connection id and read-stage timing already stamped.
  obsv::SpanBuilder local;
  if (sb == nullptr) {
    sb = &local;
    if (recorder_.enabled()) local.begin(0, seq);
  }
  sb->set_op(obsv::Op::kOther);  // until the op field decodes
  sb->set_request_bytes(line.size());

  // The id is echoed into every reply, including error replies, so clients
  // multiplexing one connection can match responses. Until it is decoded the
  // reply carries "id":null.
  std::string id_dump = "null";
  const char* error_kind = nullptr;
  std::string error_message;
  long long error_retry_after_ms = -1;
  std::string payload;
  bool echo_span = false;

  try {
    if (line.size() > options_.max_text_bytes + 4096) {
      throw RequestError{"bad_request", "request line too large"};
    }
    json::Value request;
    try {
      request = json::parse(line);
    } catch (const json::ParseError& e) {
      throw RequestError{"parse", e.what()};
    }
    if (!request.is_object()) {
      throw RequestError{"parse", "request must be a JSON object"};
    }
    if (const json::Value* id = request.find("id")) {
      if (!id->is_int() && !id->is_string() && !id->is_null()) {
        bad_request("field 'id' must be an integer or a string");
      }
      id_dump = id->dump();
    }
    if (const json::Value* echo = request.find("echo_span")) {
      if (!echo->is_bool()) bad_request("field 'echo_span' must be a boolean");
      echo_span = echo->as_bool();
    }
    // Effective deadline: the server cap, shortened (never extended) by a
    // client-supplied deadline_ms, anchored at handle_line entry. 0 = none.
    // Checked only on the expensive paths (cache miss, profile, queue wait)
    // so the warm path stays inside its <2% overhead budget.
    std::uint64_t budget_ms = options_.request_timeout_ms;
    if (const json::Value* dl = request.find("deadline_ms")) {
      if (!dl->is_int() || dl->as_int() <= 0) {
        bad_request("field 'deadline_ms' must be a positive integer");
      }
      const std::uint64_t client_ms = static_cast<std::uint64_t>(dl->as_int());
      budget_ms = budget_ms == 0 ? client_ms : std::min(budget_ms, client_ms);
    }
    const std::uint64_t deadline_ns =
        budget_ms == 0 ? 0 : entry_ns + budget_ms * 1'000'000ull;
    auto check_deadline = [&](const char* stage) {
      if (deadline_ns != 0 && obsv::now_ns() >= deadline_ns) {
        overload_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        throw RequestError{"timeout",
                           std::string("deadline expired before ") + stage};
      }
    };
    // Translates an admission verdict into the structured reply the contract
    // demands: queue full -> overloaded (shed before queue), queue wait
    // exhausted -> overloaded + retry_after, own deadline hit while queued ->
    // timeout. The Ticket at each call site releases the slot on scope exit.
    auto require_admission = [&](Admission verdict) {
      switch (verdict) {
        case Admission::kAdmitted:
          return;
        case Admission::kShed:
          overload_.shed_requests.fetch_add(1, std::memory_order_relaxed);
          throw RequestError{
              "overloaded", "server at --max-inflight capacity (queue full)",
              static_cast<long long>(options_.retry_after_ms)};
        case Admission::kQueueTimeout:
          overload_.queue_timeouts.fetch_add(1, std::memory_order_relaxed);
          throw RequestError{
              "overloaded", "no execution slot within the queue timeout",
              static_cast<long long>(options_.retry_after_ms)};
        case Admission::kDeadline:
          overload_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
          throw RequestError{
              "timeout", "deadline expired while queued for execution"};
      }
    };

    const json::Value* op = request.find("op");
    if (!op) bad_request("missing required field 'op'");
    if (!op->is_string()) bad_request("field 'op' must be a string");
    const std::string& name = op->as_string();
    sb->set_op(op_from_name(name));
    sb->mark(obsv::Stage::kParse);

    if (name == "ping") {
      payload = "{\"pong\":true}";
    } else if (name == "encode" || name == "verify") {
      const std::uint8_t op_id = name == "encode" ? kOpEncode : kOpVerify;
      const EncodeParams params = decode_encode_params(request, options_);
      const isa::Program program = assemble_request(params.text);
      const std::vector<bits::BitSeq> lines =
          bits::vertical_lines(program.text);
      const CacheKey key = make_key(lines, params, op_id);
      sb->mark(obsv::Stage::kParse);  // decode + assembly charge to parse
      sb->set_shard(cache_.shard_of(key));
      const std::shared_ptr<const std::string> hit = cache_.lookup(key);
      sb->mark(obsv::Stage::kCacheLookup);
      if (hit) {
        sb->set_outcome(obsv::Outcome::kHit);
        payload = *hit;
      } else {
        sb->set_outcome(obsv::Outcome::kMiss);
        check_deadline("execute");
        AdmissionController::Ticket ticket(admission_, deadline_ns);
        require_admission(ticket.result());
        std::string cold = op_id == kOpEncode
                               ? compute_encode_payload(program, lines, params)
                               : compute_verify_payload(program, lines, params);
        // insert() returns the resident payload: if another worker computed
        // the same key first, its bytes win for every caller.
        payload = *cache_.insert(key, std::move(cold));
        sb->mark(obsv::Stage::kExecute);
      }
    } else if (name == "profile") {
      check_deadline("execute");
      AdmissionController::Ticket ticket(admission_, deadline_ns);
      require_admission(ticket.result());
      payload = compute_profile_payload(request, options_);
      sb->mark(obsv::Stage::kExecute);
    } else if (name == "stats") {
      const CacheStats stats = cache_.stats();
      json::Value result = json::Value::object();
      result.set("requests", requests());
      result.set("errors", errors());
      json::Value cache = json::Value::object();
      cache.set("lookups", stats.lookups);
      cache.set("hits", stats.hits);
      cache.set("misses", stats.misses);
      cache.set("evictions", stats.evictions);
      cache.set("insertions", stats.insertions);
      cache.set("entries", stats.entries);
      cache.set("capacity", static_cast<long long>(cache_.capacity()));
      cache.set("shards", cache_.shard_count());
      result.set("cache", std::move(cache));
      json::Value overload = json::Value::object();
      overload.set("shed_connections",
                   overload_.shed_connections.load(std::memory_order_relaxed));
      overload.set("shed_requests",
                   overload_.shed_requests.load(std::memory_order_relaxed));
      overload.set("queue_timeouts",
                   overload_.queue_timeouts.load(std::memory_order_relaxed));
      overload.set("deadline_expired",
                   overload_.deadline_expired.load(std::memory_order_relaxed));
      overload.set("read_timeouts",
                   overload_.read_timeouts.load(std::memory_order_relaxed));
      overload.set("write_timeouts",
                   overload_.write_timeouts.load(std::memory_order_relaxed));
      result.set("overload", std::move(overload));
      payload = result.dump();
      sb->mark(obsv::Stage::kExecute);
    } else if (name == "metrics") {
      payload = metrics_payload(request);
      sb->mark(obsv::Stage::kExecute);
    } else if (name == "dump") {
      obsv::FlightRecorder* flight = recorder_.flight();
      if (flight == nullptr) {
        bad_request("flight recorder not configured (start with --flight)");
      }
      const long long rows = flight->dump("dump_op");
      if (rows < 0) {
        throw RequestError{"internal", std::string("cannot write flight dump ") +
                                           flight->path()};
      }
      json::Value result = json::Value::object();
      result.set("path", flight->path());
      result.set("rows", rows);
      payload = result.dump();
      sb->mark(obsv::Stage::kExecute);
    } else {
      bad_request("unknown op '" + name + "'");
    }
  } catch (const RequestError& e) {
    error_kind = e.kind;
    error_message = e.message;
    error_retry_after_ms = e.retry_after_ms;
  } catch (const std::exception& e) {
    error_kind = "internal";
    error_message = e.what();
  } catch (...) {
    error_kind = "internal";
    error_message = "unknown error";
  }

  std::string reply;
  if (error_kind) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("serve.errors");
    sb->set_error_kind(obsv::error_kind_id(error_kind));
    // Build the error object through the JSON layer so arbitrary exception
    // text is always escaped correctly.
    json::Value error = json::Value::object();
    error.set("kind", error_kind);
    error.set("message", error_message);
    if (error_retry_after_ms >= 0) {
      error.set("retry_after_ms", error_retry_after_ms);
    }
    sb->mark(obsv::Stage::kSerialize);
    reply = "{\"id\":" + id_dump + ",\"ok\":false,\"error\":" + error.dump() +
            "}";
  } else {
    sb->set_payload_bytes(payload.size());
    sb->mark(obsv::Stage::kSerialize);
    // Replies are spliced as strings around the cached payload, so a cache
    // hit returns exactly the bytes the cold encode produced. The opt-in
    // echoed latency lives in the envelope, outside `result`, so the cached
    // payload (and the byte-identity contract) is untouched.
    if (echo_span) {
      reply = "{\"id\":" + id_dump +
              ",\"ok\":true,\"server_ns\":" + std::to_string(sb->server_ns()) +
              ",\"result\":" + payload + "}";
    } else {
      reply = "{\"id\":" + id_dump + ",\"ok\":true,\"result\":" + payload + "}";
    }
  }
  // Recorded before the reply leaves this function — by the time a client
  // holds the reply bytes, the metrics op already counts the request (the
  // smoke test's count-equality assertion rests on this ordering).
  if (recorder_.enabled() && sb->active()) recorder_.observe(sb->span());
  return reply;
}

std::string Service::metrics_payload(const json::Value& request) {
  bool prometheus = false;
  if (const json::Value* format = request.find("format")) {
    if (!format->is_string()) bad_request("field 'format' must be a string");
    const std::string& name = format->as_string();
    if (name == "prometheus") {
      prometheus = true;
    } else if (name != "json") {
      bad_request("field 'format' must be 'json' or 'prometheus', got '" +
                  name + "'");
    }
  }

  // Snapshot every latency cell once; each snapshot's count is the sum of
  // the buckets it read, so counts and buckets are consistent per cell.
  struct Cell {
    obsv::Op op;
    obsv::Outcome outcome;
    obsv::LogHistogram::Snapshot snap;
  };
  std::vector<Cell> cells;
  std::uint64_t by_op[obsv::kOpCount] = {};
  for (unsigned op = 0; op < obsv::kOpCount; ++op) {
    for (unsigned outcome = 0; outcome < obsv::kOutcomeCount; ++outcome) {
      obsv::LogHistogram::Snapshot snap =
          recorder_.latency()
              .cell(static_cast<obsv::Op>(op),
                    static_cast<obsv::Outcome>(outcome))
              .snapshot();
      by_op[op] += snap.count;
      if (snap.count > 0) {
        cells.push_back(Cell{static_cast<obsv::Op>(op),
                             static_cast<obsv::Outcome>(outcome),
                             std::move(snap)});
      }
    }
  }
  const CacheStats stats = cache_.stats();
  const std::pair<const char*, std::uint64_t> overload_counters[] = {
      {"shed_connections",
       overload_.shed_connections.load(std::memory_order_relaxed)},
      {"shed_requests",
       overload_.shed_requests.load(std::memory_order_relaxed)},
      {"queue_timeouts",
       overload_.queue_timeouts.load(std::memory_order_relaxed)},
      {"deadline_expired",
       overload_.deadline_expired.load(std::memory_order_relaxed)},
      {"read_timeouts",
       overload_.read_timeouts.load(std::memory_order_relaxed)},
      {"write_timeouts",
       overload_.write_timeouts.load(std::memory_order_relaxed)}};

  if (!prometheus) {
    json::Value result = json::Value::object();
    result.set("requests", requests());
    result.set("errors", errors());
    json::Value ops = json::Value::object();
    for (unsigned op = 0; op < obsv::kOpCount; ++op) {
      ops.set(obsv::op_name(static_cast<obsv::Op>(op)), by_op[op]);
    }
    result.set("by_op", std::move(ops));
    json::Value hists = json::Value::object();
    for (const Cell& cell : cells) {
      json::Value h = json::Value::object();
      h.set("count", cell.snap.count);
      h.set("sum_ns", cell.snap.sum);
      h.set("max_ns", cell.snap.max);
      h.set("p50_ns", cell.snap.quantile(0.50));
      h.set("p90_ns", cell.snap.quantile(0.90));
      h.set("p99_ns", cell.snap.quantile(0.99));
      h.set("p999_ns", cell.snap.quantile(0.999));
      hists.set(std::string(obsv::op_name(cell.op)) + "." +
                    obsv::outcome_name(cell.outcome),
                std::move(h));
    }
    result.set("histograms", std::move(hists));
    json::Value cache = json::Value::object();
    cache.set("lookups", stats.lookups);
    cache.set("hits", stats.hits);
    cache.set("misses", stats.misses);
    cache.set("evictions", stats.evictions);
    cache.set("insertions", stats.insertions);
    cache.set("entries", stats.entries);
    result.set("cache", std::move(cache));
    json::Value overload = json::Value::object();
    for (const auto& [name, value] : overload_counters) {
      overload.set(name, value);
    }
    result.set("overload", std::move(overload));
    json::Value obs = json::Value::object();
    obs.set("enabled", recorder_.enabled());
    obs.set("slow_ms", recorder_.options().slow_ms);
    obs.set("flight", recorder_.flight() != nullptr);
    result.set("observability", std::move(obs));
    return result.dump();
  }

  std::vector<telemetry::PromFamily> families;
  families.push_back(telemetry::PromFamily{
      "asimt_serve_requests_total", "counter", "requests handled",
      {telemetry::PromSample{"", {}, std::to_string(requests())}}});
  families.push_back(telemetry::PromFamily{
      "asimt_serve_errors_total", "counter", "error replies sent",
      {telemetry::PromSample{"", {}, std::to_string(errors())}}});
  telemetry::PromFamily duration{
      "asimt_serve_request_ns", "histogram",
      "server-side request latency in nanoseconds by op and cache outcome",
      {}};
  for (const Cell& cell : cells) {
    const std::string op = obsv::op_name(cell.op);
    const std::string outcome = obsv::outcome_name(cell.outcome);
    std::uint64_t cumulative = 0;
    for (const auto& [index, n] : cell.snap.buckets) {
      cumulative += n;
      duration.samples.push_back(telemetry::PromSample{
          "_bucket",
          {{"op", op},
           {"outcome", outcome},
           {"le",
            std::to_string(obsv::LogHistogram::bucket_upper_bound(index))}},
          std::to_string(cumulative)});
    }
    duration.samples.push_back(telemetry::PromSample{
        "_bucket",
        {{"op", op}, {"outcome", outcome}, {"le", "+Inf"}},
        std::to_string(cell.snap.count)});
    duration.samples.push_back(telemetry::PromSample{
        "_count",
        {{"op", op}, {"outcome", outcome}},
        std::to_string(cell.snap.count)});
    duration.samples.push_back(telemetry::PromSample{
        "_sum",
        {{"op", op}, {"outcome", outcome}},
        std::to_string(cell.snap.sum)});
  }
  families.push_back(std::move(duration));
  const std::pair<const char*, std::uint64_t> cache_counters[] = {
      {"lookups", stats.lookups},   {"hits", stats.hits},
      {"misses", stats.misses},     {"evictions", stats.evictions},
      {"insertions", stats.insertions}};
  for (const auto& [name, value] : cache_counters) {
    families.push_back(telemetry::PromFamily{
        std::string("asimt_serve_cache_") + name + "_total", "counter",
        std::string("cache ") + name,
        {telemetry::PromSample{"", {}, std::to_string(value)}}});
  }
  families.push_back(telemetry::PromFamily{
      "asimt_serve_cache_entries", "gauge", "resident cache entries",
      {telemetry::PromSample{"", {}, std::to_string(stats.entries)}}});
  telemetry::PromFamily overload_family{
      "asimt_serve_overload_total", "counter",
      "requests and connections shed or timed out by overload protection",
      {}};
  for (const auto& [name, value] : overload_counters) {
    overload_family.samples.push_back(
        telemetry::PromSample{"", {{"reason", name}}, std::to_string(value)});
  }
  families.push_back(std::move(overload_family));

  json::Value result = json::Value::object();
  result.set("content_type", "text/plain; version=0.0.4");
  result.set("text", telemetry::render_prometheus(std::move(families)));
  return result.dump();
}

}  // namespace asimt::serve
