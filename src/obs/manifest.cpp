#include "obs/manifest.h"

#include <ctime>
#include <fstream>
#include <string>
#include <thread>

#include "obs/buildinfo.h"
#include "parallel/pool.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace asimt::obs {

namespace {

std::string capture_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

std::string capture_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

std::string capture_timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

RunManifest capture() {
  RunManifest m;
  m.git_sha = ASIMT_BUILD_GIT_SHA;
  m.git_dirty = ASIMT_BUILD_GIT_DIRTY != 0;
  m.compiler = ASIMT_BUILD_COMPILER;
  m.cxx_flags = ASIMT_BUILD_CXX_FLAGS;
  m.build_type = ASIMT_BUILD_TYPE;
  m.hostname = capture_hostname();
  m.cpu_model = capture_cpu_model();
  m.cores = static_cast<int>(std::thread::hardware_concurrency());
  m.jobs = parallel::default_jobs();
  m.timestamp_utc = capture_timestamp_utc();
  return m;
}

}  // namespace

const RunManifest& run_manifest() {
  static const RunManifest manifest = capture();
  return manifest;
}

json::Value to_json(const RunManifest& m, ManifestFields fields) {
  json::Value v = json::Value::object();
  v.set("schema_version", m.schema_version);
  v.set("git_sha", m.git_sha);
  v.set("git_dirty", m.git_dirty);
  v.set("compiler", m.compiler);
  v.set("cxx_flags", m.cxx_flags);
  v.set("build_type", m.build_type);
  v.set("hostname", m.hostname);
  v.set("cpu_model", m.cpu_model);
  v.set("cores", m.cores);
  if (fields == ManifestFields::kFull) {
    v.set("jobs", static_cast<long long>(m.jobs));
    v.set("timestamp_utc", m.timestamp_utc);
  }
  return v;
}

RunManifest manifest_from_json(const json::Value& v) {
  RunManifest m;
  m.schema_version = static_cast<int>(v.at("schema_version").as_int());
  m.git_sha = v.at("git_sha").as_string();
  m.git_dirty = v.at("git_dirty").as_bool();
  m.compiler = v.at("compiler").as_string();
  m.cxx_flags = v.at("cxx_flags").as_string();
  m.build_type = v.at("build_type").as_string();
  m.hostname = v.at("hostname").as_string();
  m.cpu_model = v.at("cpu_model").as_string();
  m.cores = static_cast<int>(v.at("cores").as_int());
  if (const json::Value* jobs = v.find("jobs")) {
    m.jobs = static_cast<unsigned>(jobs->as_int());
  }
  if (const json::Value* ts = v.find("timestamp_utc")) {
    m.timestamp_utc = ts->as_string();
  }
  return m;
}

void embed_manifest(json::Value& doc, ManifestFields fields) {
  doc.set("manifest", to_json(run_manifest(), fields));
}

}  // namespace asimt::obs
