#include "obs/history.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace asimt::obs {

std::string history_path(const std::string& dir, const std::string& bench) {
  return dir + "/" + bench + ".jsonl";
}

bool append_history(const std::string& dir, const json::Value& artifact) {
  const json::Value* bench = artifact.find("bench");
  if (bench == nullptr || !bench->is_string()) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  std::ofstream out(history_path(dir, bench->as_string()), std::ios::app);
  if (!out) return false;
  out << artifact.dump() << "\n";
  return static_cast<bool>(out);
}

bool read_history(const std::string& path, std::vector<json::Value>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      out.push_back(json::parse(line));
    } catch (const json::ParseError&) {
      return false;  // entries parsed so far stay in `out`
    }
  }
  return true;
}

}  // namespace asimt::obs
