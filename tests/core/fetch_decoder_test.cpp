// Tests for the cycle-level fetch-side decoder hardware model (§7.2):
// BBIT-triggered entry, TT entry sequencing, E/CT tail handling, history
// register reload at block boundaries, and raw passthrough outside encoded
// regions.
#include "core/fetch_decoder.h"

#include <gtest/gtest.h>

#include <random>

#include "core/program_encoder.h"

namespace asimt::core {
namespace {

ChainOptions options_for(int k) {
  ChainOptions opt;
  opt.block_size = k;
  opt.allowed = std::span<const Transform>{kPaperSubset};
  opt.strategy = ChainStrategy::kGreedy;
  return opt;
}

std::vector<std::uint32_t> random_words(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

// Builds a decoder serving exactly one encoded block at `pc`.
FetchDecoder decoder_for(const BlockEncoding& enc) {
  TtConfig tt;
  tt.block_size = enc.block_size;
  tt.entries = enc.tt_entries;
  return FetchDecoder(tt, {BbitEntry{enc.start_pc, 0}});
}

TEST(FetchDecoder, RestoresOneBlockExactly) {
  for (int k : {4, 5, 6, 7}) {
    for (std::size_t m : {1u, 2u, 5u, 8u, 13u, 21u}) {
      const auto words = random_words(m, static_cast<std::uint32_t>(k + m));
      const BlockEncoding enc = encode_basic_block(words, 0x1000, options_for(k));
      FetchDecoder decoder = decoder_for(enc);
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint32_t pc = 0x1000 + 4 * static_cast<std::uint32_t>(i);
        EXPECT_EQ(decoder.feed(pc, enc.encoded_words[i]), words[i])
            << "k=" << k << " m=" << m << " i=" << i;
      }
      EXPECT_FALSE(decoder.in_encoded_mode())
          << "decoder must exit after CT expires (k=" << k << " m=" << m << ")";
    }
  }
}

TEST(FetchDecoder, RawPassthroughOutsideEncodedRegions) {
  const auto words = random_words(6, 1);
  const BlockEncoding enc = encode_basic_block(words, 0x1000, options_for(5));
  FetchDecoder decoder = decoder_for(enc);
  EXPECT_EQ(decoder.feed(0x2000, 0xABCD1234u), 0xABCD1234u);
  EXPECT_FALSE(decoder.in_encoded_mode());
  EXPECT_EQ(decoder.stats().raw, 1u);
}

TEST(FetchDecoder, LoopedBlockDecodesEveryIteration) {
  // A tight loop refetches the same encoded block; the BBIT hit at the
  // header must reset chain state every time.
  const auto words = random_words(9, 7);
  const BlockEncoding enc = encode_basic_block(words, 0x4000, options_for(4));
  FetchDecoder decoder = decoder_for(enc);
  for (int iteration = 0; iteration < 5; ++iteration) {
    for (std::size_t i = 0; i < words.size(); ++i) {
      const std::uint32_t pc = 0x4000 + 4 * static_cast<std::uint32_t>(i);
      ASSERT_EQ(decoder.feed(pc, enc.encoded_words[i]), words[i])
          << "iteration=" << iteration << " i=" << i;
    }
  }
  EXPECT_EQ(decoder.stats().bbit_hits, 5u);
}

TEST(FetchDecoder, MultipleBlocksShareTheTable) {
  // Two encoded blocks like a loop body with an if/else: BBIT points each
  // start PC at its own TT range.
  const auto words_a = random_words(7, 21);
  const auto words_b = random_words(11, 22);
  const BlockEncoding enc_a = encode_basic_block(words_a, 0x1000, options_for(5));
  const BlockEncoding enc_b = encode_basic_block(words_b, 0x2000, options_for(5));
  TtConfig tt;
  tt.block_size = 5;
  tt.entries = enc_a.tt_entries;
  tt.entries.insert(tt.entries.end(), enc_b.tt_entries.begin(),
                    enc_b.tt_entries.end());
  FetchDecoder decoder(
      tt, {BbitEntry{0x1000, 0},
           BbitEntry{0x2000, static_cast<std::uint16_t>(enc_a.tt_entries.size())}});

  // a, then b, then a again (alternating control flow).
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < words_a.size(); ++i) {
      ASSERT_EQ(decoder.feed(0x1000 + 4 * static_cast<std::uint32_t>(i),
                             enc_a.encoded_words[i]),
                words_a[i]);
    }
    for (std::size_t i = 0; i < words_b.size(); ++i) {
      ASSERT_EQ(decoder.feed(0x2000 + 4 * static_cast<std::uint32_t>(i),
                             enc_b.encoded_words[i]),
                words_b[i]);
    }
  }
}

TEST(FetchDecoder, EncodedBlockFollowedByRawCode) {
  const auto words = random_words(6, 3);
  const BlockEncoding enc = encode_basic_block(words, 0x1000, options_for(4));
  FetchDecoder decoder = decoder_for(enc);
  for (std::size_t i = 0; i < words.size(); ++i) {
    decoder.feed(0x1000 + 4 * static_cast<std::uint32_t>(i), enc.encoded_words[i]);
  }
  // Fallthrough to unencoded code: raw words pass untouched.
  EXPECT_EQ(decoder.feed(0x1000 + 24, 0x11111111u), 0x11111111u);
  EXPECT_EQ(decoder.feed(0x1000 + 28, 0x22222222u), 0x22222222u);
  EXPECT_EQ(decoder.stats().raw, 2u);
}

TEST(FetchDecoder, BbitHitPreemptsActiveBlock) {
  // A branch can leave block A's region for block B's header while A's tail
  // was still pending (only possible at A's final instruction in practice,
  // but the hardware keys purely on the BBIT).
  const auto words_a = random_words(9, 5);
  const auto words_b = random_words(5, 6);
  const BlockEncoding enc_a = encode_basic_block(words_a, 0x1000, options_for(4));
  const BlockEncoding enc_b = encode_basic_block(words_b, 0x3000, options_for(4));
  TtConfig tt;
  tt.block_size = 4;
  tt.entries = enc_a.tt_entries;
  tt.entries.insert(tt.entries.end(), enc_b.tt_entries.begin(),
                    enc_b.tt_entries.end());
  FetchDecoder decoder(
      tt, {BbitEntry{0x1000, 0},
           BbitEntry{0x3000, static_cast<std::uint16_t>(enc_a.tt_entries.size())}});
  // Fetch only half of A, then jump to B.
  for (std::size_t i = 0; i < 4; ++i) {
    decoder.feed(0x1000 + 4 * static_cast<std::uint32_t>(i), enc_a.encoded_words[i]);
  }
  for (std::size_t i = 0; i < words_b.size(); ++i) {
    EXPECT_EQ(decoder.feed(0x3000 + 4 * static_cast<std::uint32_t>(i),
                           enc_b.encoded_words[i]),
              words_b[i]);
  }
}

TEST(FetchDecoder, StatsAccounting) {
  const auto words = random_words(6, 9);
  const BlockEncoding enc = encode_basic_block(words, 0x1000, options_for(5));
  FetchDecoder decoder = decoder_for(enc);
  decoder.feed(0x0, 0x0);  // raw
  for (std::size_t i = 0; i < words.size(); ++i) {
    decoder.feed(0x1000 + 4 * static_cast<std::uint32_t>(i), enc.encoded_words[i]);
  }
  decoder.feed(0x0, 0x0);  // raw
  EXPECT_EQ(decoder.stats().fetches, words.size() + 2);
  EXPECT_EQ(decoder.stats().decoded, words.size());
  EXPECT_EQ(decoder.stats().raw, 2u);
  EXPECT_EQ(decoder.stats().bbit_hits, 1u);
}

TEST(FetchDecoder, ValidatesConstruction) {
  TtConfig tt;
  tt.block_size = 1;
  EXPECT_THROW(FetchDecoder(tt, {}), std::invalid_argument);
  tt.block_size = 5;
  tt.entries.resize(2);
  EXPECT_THROW(FetchDecoder(tt, {BbitEntry{0, 7}}), std::invalid_argument);
}

TEST(FetchDecoder, BudgetIntrospection) {
  const auto words = random_words(9, 11);
  const BlockEncoding enc = encode_basic_block(words, 0x1000, options_for(4));
  FetchDecoder decoder = decoder_for(enc);
  EXPECT_EQ(decoder.tt_entries(), enc.tt_entries.size());
  EXPECT_EQ(decoder.bbit_entries(), 1u);
}

}  // namespace
}  // namespace asimt::core
