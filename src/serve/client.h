// Minimal blocking client for the serve protocol: connect to the daemon's
// unix socket, send request lines, read reply lines. Used by the load
// generator's connections and by the integration tests; scripts can speak
// the same protocol with nothing fancier than `nc -U`.
#pragma once

#include <optional>
#include <string>

namespace asimt::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  // Connects to the daemon at `socket_path`. On failure returns false and
  // leaves the reason in error().
  bool connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }
  void close();

  // Sends `line` plus the terminating newline. False on a broken pipe.
  bool send_line(const std::string& line);

  // Blocks for the next reply line (newline stripped). nullopt on EOF or a
  // read error — e.g. the daemon drained and closed.
  std::optional<std::string> recv_line();

  // One request, one reply.
  std::optional<std::string> roundtrip(const std::string& line) {
    if (!send_line(line)) return std::nullopt;
    return recv_line();
  }

  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
  std::string error_;
};

}  // namespace asimt::serve
