// Tests for the basic-block ("vertical") encoder and its TT-entry output.
#include "core/program_encoder.h"

#include <gtest/gtest.h>

#include <random>

#include "bitstream/bitseq.h"

namespace asimt::core {
namespace {

ChainOptions options_for(int k) {
  ChainOptions opt;
  opt.block_size = k;
  opt.allowed = std::span<const Transform>{kPaperSubset};
  opt.strategy = ChainStrategy::kGreedy;
  return opt;
}

std::vector<std::uint32_t> random_words(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

TEST(EncodeBasicBlock, Figure1Example) {
  // Fig. 1: the leftmost column "1010" can be stored as "1000" — bit line 31
  // alternating collapses to a constant-ish stored stream.
  std::vector<std::uint32_t> words = {0x80000000u, 0x0u, 0x80000000u, 0x0u};
  const BlockEncoding enc = encode_basic_block(words, 0x1000, options_for(4));
  const auto line31 = bits::vertical_line(enc.encoded_words, 31);
  EXPECT_LE(line31.transitions(), 1);       // original had 3
  EXPECT_EQ(enc.original_transitions, 3);   // only line 31 toggles
}

TEST(EncodeBasicBlock, RoundTripsThroughSoftwareDecode) {
  for (int k : {4, 5, 6, 7}) {
    for (std::size_t m : {1u, 2u, 4u, 5u, 9u, 16u, 33u}) {
      const auto words = random_words(m, static_cast<std::uint32_t>(k * 100 + m));
      const BlockEncoding enc = encode_basic_block(words, 0x4000, options_for(k));
      EXPECT_EQ(enc.original_words, words);
      const auto decoded =
          decode_basic_block(enc.encoded_words, enc.tt_entries, k);
      EXPECT_EQ(decoded, words) << "k=" << k << " m=" << m;
    }
  }
}

TEST(EncodeBasicBlock, ReducesOrPreservesTransitions) {
  for (int k : {4, 5, 6, 7}) {
    for (std::uint32_t seed = 0; seed < 10; ++seed) {
      const auto words = random_words(24, seed);
      const BlockEncoding enc = encode_basic_block(words, 0, options_for(k));
      EXPECT_EQ(enc.original_transitions, bits::total_bus_transitions(words));
      EXPECT_EQ(enc.encoded_transitions,
                bits::total_bus_transitions(enc.encoded_words));
      EXPECT_GE(enc.saved_transitions(), 0);
    }
  }
}

TEST(EncodeBasicBlock, RealInstructionWordsCompressWell) {
  // A realistic loop body: nearby instructions share opcode/register fields,
  // which is exactly the vertical correlation the technique exploits.
  const std::vector<std::uint32_t> loop_body = {
      0xC4610000u,  // lwc1 $f1, 0($v1)
      0xC4820000u,  // lwc1 $f2, 0($a0)
      0x46020842u,  // mul.s $f1, $f1, $f2
      0x46010000u,  // add.s $f0, $f0, $f1
      0x24630004u,  // addiu $v1, $v1, 4
      0x00852021u,  // addu $a0, $a0, $a1
      0x25290001u,  // addiu $t1, $t1, 1
      0x1528FFF8u,  // bne $t1, $t0, loop
  };
  const BlockEncoding enc = encode_basic_block(loop_body, 0, options_for(5));
  EXPECT_GT(enc.saved_transitions(), 0);
  const double reduction = 100.0 * static_cast<double>(enc.saved_transitions()) /
                           static_cast<double>(enc.original_transitions);
  EXPECT_GT(reduction, 20.0);  // paper reports 20-52% on real code
}

TEST(EncodeBasicBlock, TtEntryCountMatchesFormula) {
  for (int k : {4, 5, 6, 7}) {
    for (std::size_t m = 1; m <= 40; ++m) {
      const auto words = random_words(m, static_cast<std::uint32_t>(m));
      const BlockEncoding enc = encode_basic_block(words, 0, options_for(k));
      EXPECT_EQ(static_cast<int>(enc.tt_entries.size()), tt_entries_for(m, k))
          << "k=" << k << " m=" << m;
    }
  }
}

TEST(EncodeBasicBlock, TailEntryCarriesEndAndCt) {
  const auto words = random_words(9, 1);
  const BlockEncoding enc = encode_basic_block(words, 0, options_for(4));
  ASSERT_EQ(enc.tt_entries.size(), 3u);
  EXPECT_FALSE(enc.tt_entries[0].end);
  EXPECT_FALSE(enc.tt_entries[1].end);
  EXPECT_TRUE(enc.tt_entries[2].end);
  EXPECT_EQ(enc.tt_entries[2].ct, 3);  // tail block covers bits 6..8
}

TEST(EncodeBasicBlock, SingleInstructionBlock) {
  const std::vector<std::uint32_t> words = {0xDEADBEEFu};
  const BlockEncoding enc = encode_basic_block(words, 0, options_for(5));
  EXPECT_EQ(enc.encoded_words, words);  // stored plain
  ASSERT_EQ(enc.tt_entries.size(), 1u);
  EXPECT_TRUE(enc.tt_entries[0].end);
  EXPECT_EQ(enc.tt_entries[0].ct, 1);
}

TEST(EncodeBasicBlock, FirstWordAlwaysStoredPlain) {
  for (std::uint32_t seed = 0; seed < 5; ++seed) {
    const auto words = random_words(12, seed);
    const BlockEncoding enc = encode_basic_block(words, 0, options_for(5));
    EXPECT_EQ(enc.encoded_words[0], words[0]);
  }
}

TEST(EncodeBasicBlock, RejectsTransformsOutsideTheSubset) {
  ChainOptions opt;
  opt.block_size = 4;
  opt.allowed = std::span<const Transform>{kAllTransforms};  // includes and/or
  const auto words = random_words(8, 0);
  EXPECT_THROW(encode_basic_block(words, 0, opt), std::invalid_argument);
}

TEST(DecodeBasicBlock, RejectsMismatchedEntryCount) {
  const auto words = random_words(10, 2);
  const BlockEncoding enc = encode_basic_block(words, 0, options_for(4));
  std::vector<TtEntry> wrong(enc.tt_entries.begin(), enc.tt_entries.end() - 1);
  EXPECT_THROW(decode_basic_block(enc.encoded_words, wrong, 4),
               std::invalid_argument);
}

TEST(HwTables, TtEntriesForFormula) {
  EXPECT_EQ(tt_entries_for(0, 5), 0);
  EXPECT_EQ(tt_entries_for(1, 5), 1);
  EXPECT_EQ(tt_entries_for(5, 5), 1);
  EXPECT_EQ(tt_entries_for(6, 5), 2);
  EXPECT_EQ(tt_entries_for(9, 5), 2);
  EXPECT_EQ(tt_entries_for(10, 5), 3);
  // Paper's sizing example: 16 entries at size 7 handle "7 * 16 = 112"
  // instructions (the paper ignores the one-bit overlap; exactly it is
  // 1 + 15*6 = 97 assuming one contiguous region).
  EXPECT_EQ(tt_entries_for(97, 7), 16);
  EXPECT_EQ(tt_entries_for(98, 7), 17);
}

TEST(HwTables, EntryBits) {
  // 32 lines x 3 bits + E + 3-bit CT.
  EXPECT_EQ(TtConfig::entry_bits(), 32u * 3u + 1u + 3u);
}

TEST(HwTables, TransformLookup) {
  TtEntry entry;
  entry.tau[5] = 6;  // kNor
  EXPECT_EQ(entry.transform(5), kNor);
  EXPECT_EQ(entry.transform(0), kIdentity);
}

}  // namespace
}  // namespace asimt::core
