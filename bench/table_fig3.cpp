// E2 — regenerates the paper's Figure 3: TTN / RTN / improvement for block
// sizes 2..7, computed exhaustively over all block words.
#include <cstdio>

#include "core/block_code.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt::core;
  struct PaperRow {
    long long ttn, rtn;
    double impr;
  };
  // As printed in the paper (k=6 is scaled x2 there; k=7 RTN differs by 2 —
  // see EXPERIMENTS.md).
  const PaperRow paper[] = {{2, 0, 100.0},   {8, 2, 75.0},  {24, 10, 58.3},
                            {64, 32, 50.0},  {320, 180, 43.8}, {384, 234, 39.1}};

  std::printf("Figure 3: transition improvements for various block sizes\n");
  std::printf("%-10s", "Size");
  for (int k = 2; k <= 7; ++k) std::printf("%8d", k);
  std::printf("\n%-10s", "TTN");
  for (int k = 2; k <= 7; ++k) {
    std::printf("%8lld", solve_block_code(k).ttn());
  }
  std::printf("\n%-10s", "RTN");
  for (int k = 2; k <= 7; ++k) {
    std::printf("%8lld", solve_block_code(k).rtn());
  }
  std::printf("\n%-10s", "Impr(%)");
  for (int k = 2; k <= 7; ++k) {
    std::printf("%8.1f", solve_block_code(k).improvement_percent());
  }
  std::printf("\n\npaper:    ");
  for (const PaperRow& row : paper) std::printf("  %lld/%lld/%.1f%%", row.ttn, row.rtn, row.impr);
  std::printf("\n(k=2..5 match exactly; k=6 paper row is x2-scaled with the "
              "same percentage; k=7 paper RTN=234 vs exhaustive 236)\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("table_fig3")
