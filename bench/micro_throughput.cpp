// A6 — google-benchmark microbenchmarks: tooling throughput (encoder,
// decoder model, simulator, solver) plus the telemetry overhead guard
// (BM_*Telemetry* verify the disabled path costs ~nothing). These are
// engineering numbers for the library itself, not paper results.
//
// Besides the console table, every run writes BENCH_micro_throughput.json
// (via the telemetry JSON exporter) so the perf trajectory is machine
// readable: one row per benchmark with iteration counts, times, and user
// counters.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "cfg/cfg.h"
#include "core/block_code.h"
#include "core/chain_encoder.h"
#include "core/fetch_decoder.h"
#include "core/program_encoder.h"
#include "isa/assembler.h"
#include "profile/transition_profiler.h"
#include "sim/cpu.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace asimt;

bits::BitSeq random_seq(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  bits::BitSeq seq(n);
  for (std::size_t i = 0; i < n; ++i) seq.set(i, static_cast<int>(rng() & 1));
  return seq;
}

void BM_ChainEncodeGreedy(benchmark::State& state) {
  const bits::BitSeq seq = random_seq(static_cast<std::size_t>(state.range(0)), 1);
  core::ChainOptions opt;
  opt.block_size = 5;
  const core::ChainEncoder encoder(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(seq));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChainEncodeGreedy)->Arg(100)->Arg(1000);

void BM_ChainEncodeDp(benchmark::State& state) {
  const bits::BitSeq seq = random_seq(static_cast<std::size_t>(state.range(0)), 2);
  core::ChainOptions opt;
  opt.block_size = 5;
  opt.strategy = core::ChainStrategy::kOptimalDp;
  const core::ChainEncoder encoder(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(seq));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChainEncodeDp)->Arg(100)->Arg(1000);

void BM_EncodeBasicBlock(benchmark::State& state) {
  std::mt19937 rng(3);
  std::vector<std::uint32_t> words(static_cast<std::size_t>(state.range(0)));
  for (auto& w : words) w = rng();
  core::ChainOptions opt;
  opt.block_size = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode_basic_block(words, 0x1000, opt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeBasicBlock)->Arg(8)->Arg(64);

void BM_FetchDecoderFeed(benchmark::State& state) {
  std::mt19937 rng(4);
  std::vector<std::uint32_t> words(64);
  for (auto& w : words) w = rng();
  core::ChainOptions opt;
  opt.block_size = 5;
  const core::BlockEncoding enc = core::encode_basic_block(words, 0x1000, opt);
  core::TtConfig tt;
  tt.block_size = 5;
  tt.entries = enc.tt_entries;
  core::FetchDecoder decoder(tt, {core::BbitEntry{0x1000, 0}});
  for (auto _ : state) {
    for (std::size_t i = 0; i < words.size(); ++i) {
      benchmark::DoNotOptimize(decoder.feed(
          0x1000 + 4 * static_cast<std::uint32_t>(i), enc.encoded_words[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(words.size()));
}
BENCHMARK(BM_FetchDecoderFeed);

void BM_SolveBlockCode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_block_code(k));
  }
}
BENCHMARK(BM_SolveBlockCode)->Arg(5)->Arg(7);

void BM_SimulatorLoop(benchmark::State& state) {
  const isa::Program program = isa::assemble(R"(
        li      $t0, 0
        li      $t1, 10000
loop:   addiu   $t0, $t0, 1
        lw      $t2, 0($a0)
        addu    $t3, $t3, $t2
        bne     $t0, $t1, loop
        halt
)");
  for (auto _ : state) {
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cpu.state().r[isa::kA0] = 0x10000;
    const std::uint64_t steps = cpu.run(1'000'000);
    benchmark::DoNotOptimize(steps);
    state.counters["instructions"] = static_cast<double>(steps);
  }
  state.SetItemsProcessed(state.iterations() * 40003);
}
BENCHMARK(BM_SimulatorLoop);

// --- profiler overhead guard ----------------------------------------------
// The transition profiler's budget mirrors telemetry's: a fetch loop that
// carries the observe_fetch hook but has no profiler installed must stay
// within 1% of the bare loop (the global-gate path is one relaxed atomic
// load and a predicted-not-taken branch). BM_ProfilerEnabled* shows the real
// cost of full attribution for comparison.

void BM_ProfilerDisabledObserveFetch(benchmark::State& state) {
  profile::set_current(nullptr);
  std::uint32_t pc = 0x400000;
  std::uint32_t word = 0x12345678;
  for (auto _ : state) {
    profile::observe_fetch(pc, word);
    pc += 4;
    word = word * 1664525u + 1013904223u;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProfilerDisabledObserveFetch);

void BM_ProfilerEnabledObserveFetch(benchmark::State& state) {
  profile::TransitionProfiler prof(0x400000, 4096);
  profile::set_current(&prof);
  std::uint32_t pc = 0x400000;
  std::uint32_t word = 0x12345678;
  for (auto _ : state) {
    profile::observe_fetch(pc, word);
    pc = 0x400000 + ((pc - 0x400000 + 4) & 0x3FFF);
    word = word * 1664525u + 1013904223u;
    benchmark::ClobberMemory();
  }
  profile::set_current(nullptr);
}
BENCHMARK(BM_ProfilerEnabledObserveFetch);

void BM_ProfilerDisabledFetchLoop(benchmark::State& state) {
  const isa::Program program = isa::assemble(R"(
        li      $t0, 0
        li      $t1, 10000
loop:   addiu   $t0, $t0, 1
        lw      $t2, 0($a0)
        addu    $t3, $t3, $t2
        bne     $t0, $t1, loop
        halt
)");
  profile::set_current(nullptr);
  for (auto _ : state) {
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cpu.state().r[isa::kA0] = 0x10000;
    const std::uint64_t steps =
        cpu.run(1'000'000, [](std::uint32_t pc, std::uint32_t word) {
          profile::observe_fetch(pc, word);
        });
    benchmark::DoNotOptimize(steps);
  }
  state.SetItemsProcessed(state.iterations() * 40003);
}
BENCHMARK(BM_ProfilerDisabledFetchLoop);

void BM_ProfilerEnabledFetchLoop(benchmark::State& state) {
  const isa::Program program = isa::assemble(R"(
        li      $t0, 0
        li      $t1, 10000
loop:   addiu   $t0, $t0, 1
        lw      $t2, 0($a0)
        addu    $t3, $t3, $t2
        bne     $t0, $t1, loop
        halt
)");
  const cfg::Cfg cfg = cfg::build_cfg(program);
  profile::TransitionProfiler prof(cfg);
  profile::set_current(&prof);
  for (auto _ : state) {
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cpu.state().r[isa::kA0] = 0x10000;
    const std::uint64_t steps =
        cpu.run(1'000'000, [](std::uint32_t pc, std::uint32_t word) {
          profile::observe_fetch(pc, word);
        });
    benchmark::DoNotOptimize(steps);
  }
  profile::set_current(nullptr);
  state.SetItemsProcessed(state.iterations() * 40003);
}
BENCHMARK(BM_ProfilerEnabledFetchLoop);

// --- telemetry overhead guard ---------------------------------------------
// The observability layer must be free when off: these measure the exact
// instrumented operations with telemetry disabled vs. enabled. The encoder
// benchmarks above are the end-to-end check (they run with telemetry off and
// their numbers gate regressions in the hot path).

void BM_TelemetryDisabledCount(benchmark::State& state) {
  telemetry::set_enabled(false);
  for (auto _ : state) {
    telemetry::count("bench.disabled.counter");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryDisabledCount);

void BM_TelemetryEnabledCount(benchmark::State& state) {
  telemetry::set_enabled(true);
  for (auto _ : state) {
    telemetry::count("bench.enabled.counter");
    benchmark::ClobberMemory();
  }
  telemetry::set_enabled(false);
}
BENCHMARK(BM_TelemetryEnabledCount);

void BM_TelemetryDisabledScopedTimer(benchmark::State& state) {
  telemetry::set_enabled(false);
  for (auto _ : state) {
    telemetry::ScopedTimer timer("bench.disabled.us");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryDisabledScopedTimer);

void BM_ChainEncodeGreedyTelemetryOn(benchmark::State& state) {
  telemetry::set_enabled(true);
  const bits::BitSeq seq = random_seq(1000, 1);
  core::ChainOptions opt;
  opt.block_size = 5;
  const core::ChainEncoder encoder(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(seq));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  telemetry::set_enabled(false);
}
BENCHMARK(BM_ChainEncodeGreedyTelemetryOn);

// Captures every finished run into a JSON array while still printing the
// normal console table.
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  // No OO_Color: the default ConsoleReporter only drops ANSI codes when the
  // library constructs it, not when handed in externally.
  JsonTrajectoryReporter() : benchmark::ConsoleReporter(OO_Tabular) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      json::Value row = json::Value::object();
      row.set("name", run.benchmark_name());
      row.set("iterations", static_cast<long long>(run.iterations));
      row.set("real_time_ns", run.GetAdjustedRealTime());
      row.set("cpu_time_ns", run.GetAdjustedCPUTime());
      for (const auto& [counter_name, counter] : run.counters) {
        row.set(counter_name, static_cast<double>(counter.value));
      }
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const json::Value& rows() const { return rows_; }

 private:
  json::Value rows_ = json::Value::array();
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  json::Value doc = json::Value::object();
  doc.set("bench", "micro_throughput");
  doc.set("benchmarks", reporter.rows());
  const char* out_path = "BENCH_micro_throughput.json";
  if (!telemetry::write_text_file(out_path, doc.dump(2) + "\n")) {
    std::fprintf(stderr, "micro_throughput: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
