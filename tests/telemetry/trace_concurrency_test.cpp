// Concurrent-tracing integration test (suite name must keep matching the
// TraceConcurrency filter the CI TSan lane runs): a traced --jobs 8 workload
// sweep must produce a JSONL stream where every line parses and every
// thread's begin/end events replay as a coherent span stack, even though
// pool workers interleave arbitrarily in the file.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/experiment.h"
#include "parallel/pool.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workloads/workload.h"

namespace asimt::telemetry {
namespace {

class TraceConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
    set_trace_stream(&out_);
  }
  void TearDown() override {
    set_trace_stream(nullptr);
    parallel::set_default_jobs(0);
    set_enabled(false);
    MetricsRegistry::global().reset();
  }

  std::ostringstream out_;
};

TEST_F(TraceConcurrencyTest, ParallelSweepEmitsCoherentPerThreadSpans) {
  parallel::set_default_jobs(8);

  experiments::ExperimentOptions options;
  const experiments::WorkloadResult result = experiments::run_workload(
      workloads::make_fft(workloads::SizeConfig::small()), options);
  ASSERT_TRUE(result.check_passed) << result.check_error;

  set_trace_stream(nullptr);  // flush/teardown before inspecting the buffer
  const std::string jsonl = out_.str();
  ASSERT_FALSE(jsonl.empty());

  // Every line is a standalone JSON object — interleaved writers must never
  // tear lines.
  const std::vector<json::Value> events = json::parse_lines(jsonl);
  ASSERT_FALSE(events.empty());

  // Replay each thread's begin/end events as a stack: begins announce their
  // own depth (== current stack size), ends match the innermost open span.
  std::map<long long, std::vector<std::string>> stacks;
  int sweep_spans = 0;
  for (const json::Value& e : events) {
    const std::string& kind = e.at("ev").as_string();
    const json::Value* tid_field = e.find("tid");
    const long long tid = tid_field == nullptr ? 0 : tid_field->as_int();
    auto& stack = stacks[tid];
    if (kind == "begin") {
      EXPECT_EQ(e.at("depth").as_int(), static_cast<long long>(stack.size()))
          << "tid " << tid << " span " << e.at("name").as_string();
      stack.push_back(e.at("name").as_string());
      if (stack.back().rfind("sweep.k", 0) == 0) ++sweep_spans;
    } else if (kind == "end") {
      ASSERT_FALSE(stack.empty()) << "tid " << tid << " end without begin";
      EXPECT_EQ(e.at("name").as_string(), stack.back()) << "tid " << tid;
      EXPECT_EQ(e.at("depth").as_int(),
                static_cast<long long>(stack.size()) - 1);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left "
                               << stack.size() << " spans open";
  }

  // The per-block-size sweep spans all appear, one per configured k.
  EXPECT_EQ(sweep_spans, static_cast<int>(options.block_sizes.size()));
}

TEST_F(TraceConcurrencyTest, StreamIsIdenticalInContentAcrossJobCounts) {
  // Not byte-identical (timestamps and interleaving differ), but the
  // multiset of span names must not depend on the job count.
  auto span_names = [](const std::string& jsonl) {
    std::map<std::string, int> names;
    for (const json::Value& e : json::parse_lines(jsonl)) {
      if (e.at("ev").as_string() == "begin") {
        ++names[e.at("name").as_string()];
      }
    }
    return names;
  };

  experiments::ExperimentOptions options;
  const workloads::Workload workload =
      workloads::make_fir(workloads::SizeConfig::small());

  parallel::set_default_jobs(1);
  (void)experiments::run_workload(workload, options);
  const std::string serial = out_.str();
  out_.str("");

  parallel::set_default_jobs(8);
  (void)experiments::run_workload(workload, options);
  const std::string parallel_run = out_.str();

  EXPECT_EQ(span_names(serial), span_names(parallel_run));
}

}  // namespace
}  // namespace asimt::telemetry
