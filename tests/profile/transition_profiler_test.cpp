// Tests for the transition-attribution profiler: hand-computed attribution,
// exact reconciliation with BusMonitor on real fetch streams, the
// encoded/unencoded partition, the (block x line) matrix, out-of-image
// handling, deterministic top-N ordering, metric publication, and the global
// observe_fetch gate.
#include "profile/transition_profiler.h"

#include <gtest/gtest.h>

#include "cfg/cfg.h"
#include "isa/assembler.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "telemetry/metrics.h"

namespace asimt::profile {
namespace {

class TransitionProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(false);
    telemetry::MetricsRegistry::global().reset();
    set_current(nullptr);
  }
  void TearDown() override {
    set_current(nullptr);
    telemetry::set_enabled(false);
    telemetry::MetricsRegistry::global().reset();
  }
};

constexpr std::uint32_t kBase = 0x1000;

TEST_F(TransitionProfilerTest, HandComputedRawStreamAttribution) {
  TransitionProfiler prof(kBase, 4);
  prof.on_fetch(kBase + 0, 0x0);  // first fetch: free
  prof.on_fetch(kBase + 4, 0x3);  // 0 -> 3: 2 transitions at word 1
  prof.on_fetch(kBase + 8, 0x1);  // 3 -> 1: 1 transition at word 2
  prof.on_fetch(kBase + 4, 0x3);  // 1 -> 3: 1 transition at word 1 again

  EXPECT_EQ(prof.fetches(), 4u);
  EXPECT_EQ(prof.total_transitions(), 4);
  EXPECT_EQ(prof.word_transitions(0), 0);
  EXPECT_EQ(prof.word_transitions(1), 3);
  EXPECT_EQ(prof.word_transitions(2), 1);
  EXPECT_EQ(prof.word_exec(1), 2u);
  // Line attribution: 0->3 flips lines 0,1; 3->1 flips line 1; 1->3 flips
  // line 1.
  const auto lines = prof.per_line();
  EXPECT_EQ(lines[0], 1);
  EXPECT_EQ(lines[1], 3);
  EXPECT_EQ(lines[2], 0);
}

TEST_F(TransitionProfilerTest, MatchesBusMonitorOnAnyStream) {
  TransitionProfiler prof(kBase, 8);
  sim::BusMonitor bus(/*per_line=*/true);
  std::uint32_t word = 0x9E3779B9;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t pc = kBase + 4 * (static_cast<std::uint32_t>(i) % 8);
    bus.observe(word);
    prof.on_fetch(pc, word);
    word = word * 1664525u + 1013904223u;
  }
  EXPECT_EQ(prof.total_transitions(), bus.total_transitions());
  const auto prof_lines = prof.per_line();
  const auto& bus_lines = bus.per_line();
  for (unsigned b = 0; b < 32; ++b) {
    EXPECT_EQ(prof_lines[b], bus_lines[b]) << "line " << b;
  }
}

TEST_F(TransitionProfilerTest, CfgModeReconcilesWithBusOnRealRun) {
  const isa::Program program = isa::assemble(R"(
        li      $t0, 0
        li      $t1, 37
loop:   addiu   $t0, $t0, 1
        xori    $t2, $t0, 0x5A5
        bne     $t0, $t1, loop
        halt
)");
  const cfg::Cfg cfg = cfg::build_cfg(program);
  TransitionProfiler prof(cfg);
  sim::BusMonitor bus(/*per_line=*/true);

  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  cpu.run(100'000, [&](std::uint32_t pc, std::uint32_t word) {
    bus.observe(word);
    prof.on_fetch(pc, word);
  });
  ASSERT_TRUE(cpu.state().halted);

  // Totals, per-line, and summed per-block attribution all reconcile with
  // the monitor on the identical stream.
  EXPECT_EQ(prof.total_transitions(), bus.total_transitions());
  const auto prof_lines = prof.per_line();
  for (unsigned b = 0; b < 32; ++b) {
    EXPECT_EQ(prof_lines[b], bus.per_line()[b]) << "line " << b;
  }
  long long block_sum = 0;
  for (const BlockCost& cost : prof.blocks()) block_sum += cost.transitions;
  EXPECT_EQ(block_sum, bus.total_transitions());
  EXPECT_EQ(prof.out_of_image_fetches(), 0u);

  // The (block x line) matrix is a refinement of both marginals.
  for (unsigned line = 0; line < 32; ++line) {
    long long col = 0;
    for (int blk = 0; blk <= prof.block_count(); ++blk) {
      col += static_cast<long long>(prof.block_line(blk, line));
    }
    EXPECT_EQ(col, prof_lines[line]) << "line " << line;
  }
}

TEST_F(TransitionProfilerTest, EncodedUnencodedPartitionIsExhaustive) {
  TransitionProfiler prof(kBase, 8);
  prof.mark_encoded(kBase + 8, 3);  // words 2..4 encoded
  std::uint32_t word = 1;
  for (int i = 0; i < 64; ++i) {
    prof.on_fetch(kBase + 4 * (static_cast<std::uint32_t>(i) % 8), word);
    word = (word << 1) | (word >> 31);
  }
  EXPECT_TRUE(prof.word_encoded(2));
  EXPECT_TRUE(prof.word_encoded(4));
  EXPECT_FALSE(prof.word_encoded(1));
  EXPECT_FALSE(prof.word_encoded(5));
  EXPECT_GT(prof.encoded_transitions(), 0);
  EXPECT_GT(prof.unencoded_transitions(), 0);
  EXPECT_EQ(prof.encoded_transitions() + prof.unencoded_transitions() +
                prof.out_of_image_transitions(),
            prof.total_transitions());
}

TEST_F(TransitionProfilerTest, OutOfImageFetchesLandInOverflowSlot) {
  TransitionProfiler prof(kBase, 2);
  prof.on_fetch(kBase, 0x0);
  prof.on_fetch(0xFFFF0000, 0xF);   // above the image: 4 transitions
  prof.on_fetch(kBase - 4, 0x0);    // below the image (wraps huge): 4 more
  EXPECT_EQ(prof.out_of_image_fetches(), 2u);
  EXPECT_EQ(prof.out_of_image_transitions(), 8);
  EXPECT_EQ(prof.total_transitions(), 8);
  // blocks() reports the overflow as a trailing index -1 entry.
  const std::vector<BlockCost> blocks = prof.blocks();
  ASSERT_FALSE(blocks.empty());
  EXPECT_EQ(blocks.back().index, -1);
  EXPECT_EQ(blocks.back().transitions, 8);
}

TEST_F(TransitionProfilerTest, TopBlocksSortsDeterministically) {
  std::vector<BlockCost> all(4);
  all[0] = {.index = 0, .transitions = 5};
  all[1] = {.index = 1, .transitions = 9};
  all[2] = {.index = 2, .transitions = 5};
  all[3] = {.index = 3, .transitions = 7};
  const std::vector<BlockCost> top = top_blocks(all, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 1);
  EXPECT_EQ(top[1].index, 3);
  EXPECT_EQ(top[2].index, 0);  // tie with block 2 broken by lower index
  EXPECT_EQ(top_blocks(all, 100).size(), 4u);
}

TEST_F(TransitionProfilerTest, PublishEmitsProfileCounters) {
  telemetry::set_enabled(true);
  TransitionProfiler prof(kBase, 4);
  prof.mark_encoded(kBase, 2);
  prof.on_fetch(kBase + 0, 0x0);
  prof.on_fetch(kBase + 4, 0x7);   // 3 transitions, encoded
  prof.on_fetch(kBase + 8, 0x6);   // 1 transition, unencoded
  telemetry::MetricsRegistry reg;
  prof.publish(reg);
  EXPECT_EQ(reg.counter("profile.fetches").value(), 3);
  EXPECT_EQ(reg.counter("profile.transitions").value(), 4);
  EXPECT_EQ(reg.counter("profile.transitions.encoded").value(), 3);
  EXPECT_EQ(reg.counter("profile.transitions.unencoded").value(), 1);
}

TEST_F(TransitionProfilerTest, PublishIsNoOpWhenTelemetryDisabled) {
  TransitionProfiler prof(kBase, 4);
  prof.on_fetch(kBase, 0xFF);
  telemetry::MetricsRegistry reg;
  prof.publish(reg);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST_F(TransitionProfilerTest, GlobalGateRoutesToInstalledProfiler) {
  // No profiler installed: the hook is a no-op, not a crash.
  observe_fetch(kBase, 0xDEAD);
  EXPECT_EQ(current(), nullptr);

  TransitionProfiler prof(kBase, 4);
  set_current(&prof);
  observe_fetch(kBase + 0, 0x0);
  observe_fetch(kBase + 4, 0x3);
  set_current(nullptr);
  observe_fetch(kBase + 8, 0xFFFF);  // after clearing: ignored
  EXPECT_EQ(prof.fetches(), 2u);
  EXPECT_EQ(prof.total_transitions(), 2);
}

TEST_F(TransitionProfilerTest, ResetClearsEverythingButEncodedMarks) {
  TransitionProfiler prof(kBase, 4);
  prof.mark_encoded(kBase, 4);
  prof.on_fetch(kBase, 0x1);
  prof.on_fetch(kBase + 4, 0x2);
  prof.reset();
  EXPECT_EQ(prof.fetches(), 0u);
  EXPECT_EQ(prof.total_transitions(), 0);
  EXPECT_TRUE(prof.word_encoded(0));  // the static encoding map survives
  // The first fetch after reset is free again.
  prof.on_fetch(kBase, 0xFFFFFFFF);
  EXPECT_EQ(prof.total_transitions(), 0);
}

}  // namespace
}  // namespace asimt::profile
