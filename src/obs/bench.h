// Statistical measurement harness: registered microbenchmarks with warmup,
// calibrated repetitions, robust statistics, and schema-v2 artifacts.
//
// Replaces the one-shot timings the benches used to emit. A bench is a
// function that does its setup, then hands the harness the operation to
// time:
//
//   void BM_SolveBlockCode(obs::BenchContext& ctx, int k) {
//     ctx.measure([&] { obs::do_not_optimize(core::solve_block_code(k)); });
//   }
//   ASIMT_BENCH_ARG(BM_SolveBlockCode, 5);
//
// The harness calibrates an inner iteration count until one timed sample
// costs at least `min_sample_ms` (steady clock), runs `warmup` discarded
// samples, then `repetitions` measured ones, and summarizes the per-op
// nanoseconds with the stats kernel (median/MAD, outlier rejection,
// seeded-bootstrap 95% CI — see obs/stats.h). Every artifact carries the
// RunManifest and process self-metrics; schema in docs/BENCHMARKING.md.
//
// `mock_time` replaces the stopwatch with a deterministic synthetic source
// derived from (bench name, seed, sample index). It exists so tests — and
// the byte-identical-statistics acceptance check — can drive the whole
// pipeline without a real clock; it is not a measurement mode.
//
// Registration uses static objects in the defining TU; link bench suites as
// OBJECT libraries (or direct sources) so the registrars are not dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.h"

namespace asimt::obs {

// Keeps `value` observable so the optimizer cannot delete the measured op.
template <typename T>
inline void do_not_optimize(T&& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(value) : "memory");
#else
  volatile auto sink = value;
  (void)sink;
#endif
}

class BenchContext {
 public:
  // Inner iterations the measured operation must run per measure() call.
  std::uint64_t iterations() const { return iters_; }

  // Times `op` executed iterations() times. A bench body calls this exactly
  // once; everything before it is untimed setup.
  void measure(const std::function<void()>& op);

  // Work items per inner iteration — reported as items_per_second.
  void set_items_per_iter(std::uint64_t n) { items_per_iter_ = n; }

  // Free-form numeric counter attached to the artifact row.
  void set_counter(const std::string& name, double value);

 private:
  friend class BenchRunner;
  std::uint64_t iters_ = 1;
  std::int64_t elapsed_ns_ = 0;       // written by measure()
  bool measured_ = false;
  bool mock_ = false;
  std::int64_t mock_elapsed_ns_ = 0;  // injected when mock_
  std::uint64_t items_per_iter_ = 0;
  std::vector<std::pair<std::string, double>> counters_;
};

using BenchFn = std::function<void(BenchContext&)>;

struct BenchSpec {
  std::string name;
  BenchFn fn;
};

// Registration order = execution order (deterministic artifacts).
std::vector<BenchSpec>& bench_registry();

struct BenchRegistrar {
  BenchRegistrar(std::string name, BenchFn fn);
};

#define ASIMT_BENCH(fn) \
  static const ::asimt::obs::BenchRegistrar asimt_bench_reg_##fn(#fn, fn)
#define ASIMT_BENCH_ARG(fn, arg)                                          \
  static const ::asimt::obs::BenchRegistrar asimt_bench_reg_##fn##_##arg( \
      #fn "/" #arg,                                                       \
      [](::asimt::obs::BenchContext& ctx) { fn(ctx, arg); })

struct BenchOptions {
  std::string filter;        // substring match on the bench name; empty = all
  int repetitions = 10;      // measured samples per bench
  int warmup = 2;            // discarded samples per bench
  double min_sample_ms = 10.0;  // calibration target for one timed sample
  std::uint64_t seed = 42;   // bootstrap seed (mixed with the bench name)
  bool mock_time = false;
  bool verbose_console = true;  // print the table while running

  // Defaults honoring ASIMT_FAST=1 (reduced sizes, same statistics shape).
  static BenchOptions defaults();
};

// Runs every registered bench whose name contains `options.filter`, printing
// a console table (unless disabled), and returns the schema-v2 artifact:
//   {"schema_version":2,"bench":<artifact_name>,"manifest":{...},
//    "options":{...},"benchmarks":[{name,iterations,stats:{...},...}],
//    "process":{...}}
json::Value run_benches(const BenchOptions& options,
                        const std::string& artifact_name);

// Shared command line for the standalone suite binaries (micro_throughput)
// and `asimt bench`: --filter/--repetitions/--warmup/--min-sample-ms/
// --seed/--history DIR/--out PATH/--json/--list/--mock-time. Writes the
// artifact to `default_out` (or --out), appends to --history when given.
int bench_suite_cli_main(int argc, char** argv, const char* artifact_name,
                         const char* default_out);

// Wrapper main for the standalone table/figure benches: times `body`
// (warmup + repetitions, default 0 + 1 — these run minutes, not
// microseconds), then writes BENCH_<name>.json with the manifest,
// repetition count, warmup policy, and wall_ms_stats. Returns the body's
// exit code; the artifact records it as "ok".
int bench_artifact_main(const char* bench_name, int argc, char** argv,
                        int (*body)());

#define ASIMT_BENCH_ARTIFACT_MAIN(name)                                   \
  int main(int argc, char** argv) {                                       \
    return ::asimt::obs::bench_artifact_main(name, argc, argv, &run_bench); \
  }

}  // namespace asimt::obs
