// The functional transformations of the paper (§5.1).
//
// A transformation τ restores an original bit from the encoded (bus) bit and
// one bit of history: x_n = τ(x̃_n, x_{n-1}). With one history bit, τ is one
// of the 16 two-input Boolean functions. §5.2 shows that a fixed subset of 8
// of them achieves, for every block size up to 7, the same optimum as the
// full set — this subset is what the 3-bit TT control fields index.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace asimt::core {

// One two-input Boolean function τ(x, y).
//
// x is the current encoded bit, y the history bit. Encoded as a 4-bit truth
// table: bit (x + 2y) of `truth_table` holds τ(x, y).
class Transform {
 public:
  constexpr Transform() : tt_(0b1010) {}  // identity: τ(x,y) = x
  constexpr explicit Transform(unsigned truth_table) : tt_(truth_table & 0xFu) {}

  constexpr int apply(int x, int y) const {
    return static_cast<int>((tt_ >> ((x & 1) + 2 * (y & 1))) & 1u);
  }

  // τ applied to 64 independent lanes at once: bit i of the result is
  // τ(bit i of x, bit i of y). Branchless boolean algebra — each minterm of
  // the truth table contributes through an all-ones/all-zeros lane mask, so
  // one call decodes 64 cycles of one bus line (or all 32 lines of two bus
  // words) in a handful of word ops. Lanes past the data are garbage-in/
  // garbage-out; callers mask as needed.
  constexpr std::uint64_t apply_word(std::uint64_t x, std::uint64_t y) const {
    const std::uint64_t m00 = ~(static_cast<std::uint64_t>(tt_ >> 0 & 1u) - 1);
    const std::uint64_t m10 = ~(static_cast<std::uint64_t>(tt_ >> 1 & 1u) - 1);
    const std::uint64_t m01 = ~(static_cast<std::uint64_t>(tt_ >> 2 & 1u) - 1);
    const std::uint64_t m11 = ~(static_cast<std::uint64_t>(tt_ >> 3 & 1u) - 1);
    return (m00 & ~x & ~y) | (m10 & x & ~y) | (m01 & ~x & y) | (m11 & x & y);
  }

  constexpr unsigned truth_table() const { return tt_; }

  // The transform obtained by inverting every bit of both X and X̃ — the
  // symmetry the paper uses to show only half of each code table (§5.2):
  // τ'(x, y) = ¬τ(¬x, ¬y). Swaps XOR↔XNOR and NOR↔NAND, fixes x/x̄/y/ȳ.
  constexpr Transform dual() const {
    unsigned d = 0;
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        const int v = 1 - apply(1 - x, 1 - y);
        d |= static_cast<unsigned>(v) << (x + 2 * y);
      }
    }
    return Transform{d};
  }

  // True when τ(·, y) is a bijection for every history value — i.e. the
  // encoded bit is always recoverable from the original bit and history.
  // Exactly four transforms have this property: x, x̄, XOR, XNOR.
  constexpr bool invertible_in_x() const {
    return apply(0, 0) != apply(1, 0) && apply(0, 1) != apply(1, 1);
  }

  // Human-readable name in the paper's notation ("x", "~x", "~y", "xor", ...).
  std::string name() const;

  constexpr bool operator==(const Transform&) const = default;
  // Orders transforms by truth table; lets Transform key ordered containers.
  constexpr auto operator<=>(const Transform&) const = default;

 private:
  unsigned tt_;
};

// Named transforms. The first eight, in this order, are the paper's
// sufficient subset (§5.2); their position in kPaperSubset is the 3-bit
// index stored in Transformation Table entries.
inline constexpr Transform kIdentity{0b1010};   // τ(x,y) = x
inline constexpr Transform kInvert{0b0101};     // τ(x,y) = ~x
inline constexpr Transform kHistory{0b1100};    // τ(x,y) = y
inline constexpr Transform kNotHistory{0b0011}; // τ(x,y) = ~y
inline constexpr Transform kXor{0b0110};
inline constexpr Transform kXnor{0b1001};
inline constexpr Transform kNor{0b0001};
inline constexpr Transform kNand{0b0111};
inline constexpr Transform kConst0{0b0000};
inline constexpr Transform kConst1{0b1111};
inline constexpr Transform kAnd{0b1000};
inline constexpr Transform kOr{0b1110};
inline constexpr Transform kXAndNotY{0b0010};   // x & ~y
inline constexpr Transform kNotXAndY{0b0100};   // ~x & y
inline constexpr Transform kXOrNotY{0b1011};    // x | ~y
inline constexpr Transform kNotXOrY{0b1101};    // ~x | y

// The paper's 8-transform subset. Index into this array is the TT control
// field value (3 bits per bus line).
inline constexpr std::array<Transform, 8> kPaperSubset = {
    kIdentity, kInvert, kHistory, kNotHistory, kXor, kXnor, kNor, kNand};

// All 16 two-input functions, the "unrestricted" universe of §5.1. Ordered
// with the paper subset first so that solver tie-breaking prefers the
// hardware-supported transforms.
inline constexpr std::array<Transform, 16> kAllTransforms = {
    kIdentity, kInvert,   kHistory, kNotHistory, kXor,      kXnor,
    kNor,      kNand,     kConst0,  kConst1,     kAnd,      kOr,
    kXAndNotY, kNotXAndY, kXOrNotY, kNotXOrY};

// Only the four transforms invertible in x.
inline constexpr std::array<Transform, 4> kInvertibleSubset = {
    kIdentity, kInvert, kXor, kXnor};

// Index of `t` within kPaperSubset, or -1 if it is not a member.
constexpr int paper_subset_index(Transform t) {
  for (std::size_t i = 0; i < kPaperSubset.size(); ++i) {
    if (kPaperSubset[i] == t) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace asimt::core
