// benchdiff — compare BENCH_*.json perf-trajectory artifacts.
//
// Two-file mode (the original):
//
//   benchdiff old.json new.json [--threshold PCT]
//
// Trajectory mode (the regression gate, docs/BENCHMARKING.md):
//
//   benchdiff --trajectory history.jsonl new.json
//             [--window N] [--mad-k K] [--noise-floor PCT]
//             [--markdown out.md] [--append]
//
// Artifact shapes understood, v1 (no schema_version) and v2 alike:
//   micro suite:  {"bench":...,"benchmarks":[{name, cpu_time_ns | stats:
//       {median,...}, ...}]} — rows keyed by name. v1 rows carry a one-shot
//       cpu_time_ns; v2 rows carry the stats block, whose median is used.
//   verify_full:  {"bench":"verify_full","rows":[{workload, block_size,
//       transitions, restored, ...}]} — rows keyed by (workload,
//       block_size). Transition counts are *deterministic*: any change is a
//       drift failure, not noise, and `restored` flipping false always
//       fails. v2 adds a wall_ms_stats block, compared like a perf row.
//   wrapped table benches (v2): {"bench":...,"wall_ms_stats":{...}} — one
//       synthetic "wall_ms" perf row.
//
// Trajectory gate: for each perf row, the baseline is the rolling median of
// that row's medians over the last --window history entries, and the noise
// scale is their MAD. The new median regresses when
//     new > baseline + mad_k * max(MAD, noise_floor% of baseline)
// so a 20% slowdown trips on a quiet history while run-to-run jitter below
// the noise scale passes. Deterministic verify_full rows must match the
// newest history entry exactly. --append appends the new artifact to the
// history file only when the gate passes (the store stays regression-gated);
// --markdown writes the comparison as a table for CI job summaries.
//
// Exit status: 0 clean, 1 regression(s), 2 usage / unreadable input. Rows
// present in only one side are reported but do not fail (benches grow;
// renames read as add+remove, not silent coverage loss).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "util/args.h"

namespace {

using asimt::json::Value;

[[noreturn]] void usage_error(const char* diagnostic) {
  if (diagnostic != nullptr) std::fprintf(stderr, "benchdiff: %s\n", diagnostic);
  std::fputs(
      "usage: benchdiff old.json new.json [--threshold PCT]\n"
      "       benchdiff --trajectory history.jsonl new.json [--window N]\n"
      "                 [--mad-k K] [--noise-floor PCT] [--markdown out.md]\n"
      "                 [--append]\n",
      stderr);
  std::exit(2);
}

Value load_or_die(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "benchdiff: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return asimt::json::parse(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", path.c_str(), e.what());
    std::exit(2);
  }
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double mad_of(const std::vector<double>& v, double center) {
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::abs(x - center));
  return median_of(std::move(dev));
}

// A comparable row extracted from an artifact: either a perf measurement
// (time_ns from stats.median or the v1 one-shot cpu_time_ns) or a
// deterministic verify row (transitions + restored).
struct Row {
  std::string key;
  bool deterministic = false;
  double time = 0.0;           // perf rows; ns for micro, ms for wall
  long long transitions = 0;   // deterministic rows
  bool restored = true;
};

std::optional<double> row_time(const Value& row) {
  if (const Value* stats = row.find("stats");
      stats != nullptr && stats->is_object()) {
    if (const Value* median = stats->find("median")) {
      return median->as_double();
    }
  }
  if (const Value* t = row.find("cpu_time_ns")) return t->as_double();
  return std::nullopt;
}

std::vector<Row> rows_of(const Value& doc) {
  std::vector<Row> out;
  if (const Value* benches = doc.find("benchmarks");
      benches != nullptr && benches->is_array()) {
    for (const Value& row : benches->as_array()) {
      const std::optional<double> time = row_time(row);
      if (!time) continue;
      out.push_back({row.at("name").as_string(), false, *time, 0, true});
    }
  }
  if (const Value* rows = doc.find("rows");
      rows != nullptr && rows->is_array()) {
    for (const Value& row : rows->as_array()) {
      Row r;
      r.key = row.at("workload").as_string() + "/k" +
              std::to_string(row.at("block_size").as_int());
      r.deterministic = true;
      r.transitions = row.at("transitions").as_int();
      r.restored = row.at("restored").as_bool();
      out.push_back(std::move(r));
    }
  }
  if (const Value* wall_stats = doc.find("wall_ms_stats");
      wall_stats != nullptr && wall_stats->is_object()) {
    out.push_back(
        {"wall_ms", false, wall_stats->at("median").as_double(), 0, true});
  } else if (out.empty()) {
    if (const Value* wall = doc.find("wall_ms")) {
      out.push_back({"wall_ms", false, wall->as_double(), 0, true});
    }
  }
  if (out.empty()) {
    std::fprintf(stderr,
                 "benchdiff: artifact has no comparable rows (need "
                 "'benchmarks', 'rows', or 'wall_ms_stats')\n");
    std::exit(2);
  }
  return out;
}

const Row* find_row(const std::vector<Row>& rows, const std::string& key) {
  for (const Row& row : rows) {
    if (row.key == key) return &row;
  }
  return nullptr;
}

std::string bench_name_of(const Value& doc) {
  const Value* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string()) {
    usage_error("input is not a BENCH_*.json artifact (no 'bench' field)");
  }
  return bench->as_string();
}

// --- two-file mode ---------------------------------------------------------

int diff_two(const Value& old_doc, const Value& new_doc, double threshold) {
  const std::string old_bench = bench_name_of(old_doc);
  const std::string new_bench = bench_name_of(new_doc);
  if (old_bench != new_bench) {
    std::fprintf(stderr, "benchdiff: comparing different benches: %s vs %s\n",
                 old_bench.c_str(), new_bench.c_str());
    return 2;
  }
  const std::vector<Row> old_rows = rows_of(old_doc);
  const std::vector<Row> new_rows = rows_of(new_doc);

  int regressions = 0;
  std::printf("benchdiff: %s, %zu -> %zu rows, threshold %.1f%%\n",
              old_bench.c_str(), old_rows.size(), new_rows.size(), threshold);
  for (const Row& row : new_rows) {
    const Row* old_row = find_row(old_rows, row.key);
    if (old_row == nullptr) {
      std::printf("  NEW   %s\n", row.key.c_str());
      continue;
    }
    if (row.deterministic) {
      if (!row.restored) {
        std::printf("  FAIL  %s: decode verification failed\n", row.key.c_str());
        ++regressions;
      } else if (old_row->transitions != row.transitions) {
        std::printf("  DRIFT %s: transitions %lld -> %lld (deterministic "
                    "metric changed)\n",
                    row.key.c_str(), old_row->transitions, row.transitions);
        ++regressions;
      } else {
        std::printf("  ok    %s: transitions %lld\n", row.key.c_str(),
                    row.transitions);
      }
    } else {
      const double before = old_row->time;
      const double after = row.time;
      const double delta = before > 0 ? 100.0 * (after - before) / before : 0.0;
      const bool slow = delta > threshold;
      std::printf("  %s %-44s %12.1f -> %12.1f  %+6.1f%%\n",
                  slow ? "SLOW " : "ok   ", row.key.c_str(), before, after,
                  delta);
      if (slow) ++regressions;
    }
  }
  for (const Row& row : old_rows) {
    if (find_row(new_rows, row.key) == nullptr) {
      std::printf("  GONE  %s\n", row.key.c_str());
    }
  }
  if (regressions > 0) {
    std::printf("benchdiff: %d regression(s) beyond %.1f%%\n", regressions,
                threshold);
    return 1;
  }
  std::printf("benchdiff: clean\n");
  return 0;
}

// --- trajectory mode -------------------------------------------------------

struct TrajectoryOptions {
  int window = 5;
  double mad_k = 3.0;
  double noise_floor_pct = 1.0;  // MAD floor as a percentage of the baseline
  std::string markdown_path;
  bool append = false;
};

int diff_trajectory(const std::string& history_file, const std::string& new_file,
                    const TrajectoryOptions& options) {
  const Value new_doc = load_or_die(new_file);
  const std::string bench = bench_name_of(new_doc);
  const std::vector<Row> new_rows = rows_of(new_doc);

  // Read the history; a missing or empty store establishes the baseline.
  std::vector<std::vector<Row>> history;  // oldest first, same bench only
  {
    std::ifstream in(history_file);
    std::string line;
    int lineno = 0;
    while (in && std::getline(in, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      Value entry;
      try {
        entry = asimt::json::parse(line);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "benchdiff: %s:%d: %s\n", history_file.c_str(),
                     lineno, e.what());
        return 2;
      }
      const Value* entry_bench = entry.find("bench");
      if (entry_bench == nullptr || !entry_bench->is_string() ||
          entry_bench->as_string() != bench) {
        continue;
      }
      history.push_back(rows_of(entry));
    }
  }
  if (static_cast<int>(history.size()) > options.window) {
    history.erase(history.begin(),
                  history.end() - static_cast<std::ptrdiff_t>(options.window));
  }

  const auto append_new = [&]() -> int {
    if (!options.append) return 0;
    std::ofstream out(history_file, std::ios::app);
    if (!out || !(out << new_doc.dump() << "\n")) {
      std::fprintf(stderr, "benchdiff: cannot append to %s\n",
                   history_file.c_str());
      return 2;
    }
    std::printf("benchdiff: appended to %s (%zu entries in window)\n",
                history_file.c_str(), history.size() + 1);
    return 0;
  };

  if (history.empty()) {
    std::printf("benchdiff: %s: no history in %s, baseline established\n",
                bench.c_str(), history_file.c_str());
    return append_new();
  }

  std::string md =
      "| row | baseline median | new median | delta | noise (MAD) | verdict |\n"
      "|---|---:|---:|---:|---:|---|\n";
  int regressions = 0;
  std::printf("benchdiff: %s vs rolling median of last %zu run(s)\n",
              bench.c_str(), history.size());
  for (const Row& row : new_rows) {
    char md_row[256];
    if (row.deterministic) {
      // Deterministic metrics: compare against the newest entry that has
      // the row. Any change is drift, not noise.
      const Row* last = nullptr;
      for (auto it = history.rbegin(); it != history.rend() && !last; ++it) {
        last = find_row(*it, row.key);
      }
      const char* verdict;
      if (!row.restored) {
        verdict = "FAIL";
        ++regressions;
      } else if (last != nullptr && last->transitions != row.transitions) {
        verdict = "DRIFT";
        ++regressions;
      } else {
        verdict = last == nullptr ? "new" : "ok";
      }
      std::printf("  %-5s %-44s transitions %lld\n", verdict, row.key.c_str(),
                  row.transitions);
      std::snprintf(md_row, sizeof md_row,
                    "| %s | %lld | %lld | - | - | %s |\n", row.key.c_str(),
                    last != nullptr ? last->transitions : row.transitions,
                    row.transitions, verdict);
      md += md_row;
      continue;
    }
    std::vector<double> series;
    for (const std::vector<Row>& entry : history) {
      if (const Row* old_row = find_row(entry, row.key)) {
        series.push_back(old_row->time);
      }
    }
    if (series.empty()) {
      std::printf("  NEW   %s\n", row.key.c_str());
      std::snprintf(md_row, sizeof md_row, "| %s | - | %.1f | - | - | new |\n",
                    row.key.c_str(), row.time);
      md += md_row;
      continue;
    }
    const double baseline = median_of(series);
    const double noise = mad_of(series, baseline);
    const double floor = baseline * options.noise_floor_pct / 100.0;
    const double gate = baseline + options.mad_k * std::max(noise, floor);
    const double delta =
        baseline > 0 ? 100.0 * (row.time - baseline) / baseline : 0.0;
    const bool slow = row.time > gate;
    if (slow) ++regressions;
    std::printf("  %s %-44s %12.1f -> %12.1f  %+6.1f%%  (gate %.1f, MAD %.2f)\n",
                slow ? "SLOW " : "ok   ", row.key.c_str(), baseline, row.time,
                delta, gate, noise);
    std::snprintf(md_row, sizeof md_row,
                  "| %s | %.1f | %.1f | %+.1f%% | %.2f | %s |\n",
                  row.key.c_str(), baseline, row.time, delta, noise,
                  slow ? "**SLOW**" : "ok");
    md += md_row;
  }

  if (!options.markdown_path.empty()) {
    std::ofstream out(options.markdown_path);
    char header[160];
    std::snprintf(header, sizeof header,
                  "### benchdiff: %s (window %zu, gate median + %.1f*MAD)\n\n",
                  bench.c_str(), history.size(), options.mad_k);
    if (!out || !(out << header << md)) {
      std::fprintf(stderr, "benchdiff: cannot write %s\n",
                   options.markdown_path.c_str());
      return 2;
    }
  }

  if (regressions > 0) {
    std::printf("benchdiff: %d trajectory regression(s)\n", regressions);
    return 1;
  }
  std::printf("benchdiff: clean\n");
  return append_new();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  double threshold = 10.0;
  bool trajectory = false;
  TrajectoryOptions traj;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(("option " + arg + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(
          "usage: benchdiff old.json new.json [--threshold PCT]\n"
          "       benchdiff --trajectory history.jsonl new.json [--window N]\n"
          "                 [--mad-k K] [--noise-floor PCT] [--markdown out.md]\n"
          "                 [--append]\n",
          stdout);
      return 0;
    }
    if (arg == "--threshold") {
      const std::optional<double> parsed =
          asimt::util::parse_number<double>(next());
      if (!parsed || *parsed < 0) {
        usage_error("--threshold needs a non-negative percentage");
      }
      threshold = *parsed;
    } else if (arg == "--trajectory") {
      trajectory = true;
    } else if (arg == "--window") {
      const std::optional<int> parsed = asimt::util::parse_int_in(
          next(), 1, std::numeric_limits<int>::max());
      if (!parsed) usage_error("--window needs an integer >= 1");
      traj.window = *parsed;
    } else if (arg == "--mad-k") {
      const std::optional<double> parsed =
          asimt::util::parse_number<double>(next());
      if (!parsed || *parsed < 0) usage_error("--mad-k needs a number >= 0");
      traj.mad_k = *parsed;
    } else if (arg == "--noise-floor") {
      const std::optional<double> parsed =
          asimt::util::parse_number<double>(next());
      if (!parsed || *parsed < 0) {
        usage_error("--noise-floor needs a non-negative percentage");
      }
      traj.noise_floor_pct = *parsed;
    } else if (arg == "--markdown") {
      traj.markdown_path = next();
    } else if (arg == "--append") {
      traj.append = true;
    } else if (arg[0] == '-') {
      usage_error(("unknown option '" + arg + "'").c_str());
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    usage_error(trajectory ? "need history.jsonl and new.json"
                           : "need exactly two files");
  }

  if (trajectory) return diff_trajectory(files[0], files[1], traj);
  const Value old_doc = load_or_die(files[0]);
  const Value new_doc = load_or_die(files[1]);
  return diff_two(old_doc, new_doc, threshold);
}
