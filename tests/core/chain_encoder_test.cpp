// Tests for §6: encoding arbitrary bit streams as chains of one-bit-
// overlapped blocks, greedy vs DP-optimal, and the paper's random-sequence
// experiment (1000-bit uniform streams, k=5, ~50% reduction).
#include "core/chain_encoder.h"

#include <gtest/gtest.h>

#include <random>

#include "core/block_code.h"

namespace asimt::core {
namespace {

using bits::BitSeq;

ChainOptions options_for(int k, ChainStrategy strategy) {
  ChainOptions opt;
  opt.block_size = k;
  opt.allowed = std::span<const Transform>{kPaperSubset};
  opt.strategy = strategy;
  return opt;
}

BitSeq random_seq(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  BitSeq seq(n);
  for (std::size_t i = 0; i < n; ++i) seq.set(i, static_cast<int>(rng() & 1));
  return seq;
}

// ---------------------------------------------------------------------------
// Partition geometry.
// ---------------------------------------------------------------------------

TEST(Partition, EmptyAndSingleBit) {
  EXPECT_TRUE(ChainEncoder::partition(0, 5).empty());
  const auto single = ChainEncoder::partition(1, 5);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].start, 0u);
  EXPECT_EQ(single[0].length, 1);
}

TEST(Partition, ExactOneBlock) {
  const auto blocks = ChainEncoder::partition(5, 5);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].length, 5);
}

TEST(Partition, OverlapByOneBit) {
  // Paper §6 example: block size 4 splits x_{n-3}..x_{n+3} (7 bits) into
  // (x_n..x_{n-3}) and (x_{n+3}..x_n) sharing x_n.
  const auto blocks = ChainEncoder::partition(7, 4);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].start, 0u);
  EXPECT_EQ(blocks[0].length, 4);
  EXPECT_EQ(blocks[1].start, 3u);  // the shared bit
  EXPECT_EQ(blocks[1].length, 4);
}

TEST(Partition, ShortTail) {
  const auto blocks = ChainEncoder::partition(9, 4);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[2].start, 6u);
  EXPECT_EQ(blocks[2].length, 3);
}

TEST(Partition, TrailingSingleOverlapBitProducesNoBlock) {
  // 4 bits at k=4 is one block; a 4th..7th bit boundary case: m = k + (k-1)
  // covers exactly two blocks; m one less leaves a tail of k-1 bits.
  const auto blocks = ChainEncoder::partition(4, 4);
  EXPECT_EQ(blocks.size(), 1u);
  // m=5,k=4: second block has length 2 (overlap + 1 new bit).
  const auto blocks2 = ChainEncoder::partition(5, 4);
  ASSERT_EQ(blocks2.size(), 2u);
  EXPECT_EQ(blocks2[1].length, 2);
}

TEST(Partition, CoversEveryBitExactlyOnceModuloOverlap) {
  for (int k = 2; k <= 8; ++k) {
    for (std::size_t m = 2; m <= 40; ++m) {
      const auto blocks = ChainEncoder::partition(m, k);
      ASSERT_FALSE(blocks.empty());
      EXPECT_EQ(blocks.front().start, 0u);
      for (std::size_t i = 1; i < blocks.size(); ++i) {
        EXPECT_EQ(blocks[i].start,
                  blocks[i - 1].start + static_cast<std::size_t>(blocks[i - 1].length) - 1);
        EXPECT_GE(blocks[i].length, 2);
        EXPECT_LE(blocks[i].length, k);
      }
      EXPECT_EQ(blocks.back().start + static_cast<std::size_t>(blocks.back().length), m);
    }
  }
}

// ---------------------------------------------------------------------------
// Round-trip: encode then hardware-faithful serial decode.
// ---------------------------------------------------------------------------

class RoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, ChainStrategy>> {};

TEST_P(RoundTripTest, RandomStreams) {
  const auto [k, strategy] = GetParam();
  const ChainEncoder encoder(options_for(k, strategy));
  for (std::uint32_t seed = 0; seed < 12; ++seed) {
    for (std::size_t len : {1u, 2u, 3u, 7u, 16u, 63u, 200u}) {
      const BitSeq original = random_seq(len, seed * 1000 + static_cast<std::uint32_t>(len));
      const EncodedChain chain = encoder.encode(original);
      ASSERT_EQ(chain.stored.size(), original.size());
      EXPECT_EQ(decode_chain(chain), original)
          << "k=" << k << " len=" << len << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBlockSizesAndStrategies, RoundTripTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(ChainStrategy::kGreedy,
                                         ChainStrategy::kOptimalDp)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == ChainStrategy::kGreedy ? "_greedy"
                                                                : "_dp");
    });

// ---------------------------------------------------------------------------
// Optimality relations.
// ---------------------------------------------------------------------------

class DpInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(DpInvariantTest, NeverIncreasesTransitions) {
  const ChainEncoder encoder(options_for(GetParam(), ChainStrategy::kOptimalDp));
  for (std::uint32_t seed = 100; seed < 130; ++seed) {
    const BitSeq original = random_seq(300, seed);
    const EncodedChain chain = encoder.encode(original);
    EXPECT_LE(chain.stored.transitions(), original.transitions());
  }
}

INSTANTIATE_TEST_SUITE_P(AllBlockSizes, DpInvariantTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(ChainEncoder, DpNeverWorseThanGreedy) {
  for (int k = 3; k <= 7; ++k) {
    const ChainEncoder greedy(options_for(k, ChainStrategy::kGreedy));
    const ChainEncoder dp(options_for(k, ChainStrategy::kOptimalDp));
    for (std::uint32_t seed = 0; seed < 40; ++seed) {
      const BitSeq original = random_seq(250, seed);
      EXPECT_LE(dp.encode(original).stored.transitions(),
                greedy.encode(original).stored.transitions())
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(ChainEncoder, SingleBlockMatchesBlockCodeOptimum) {
  // A stream of exactly k bits is one chain-initial block; the encoder must
  // reach the Fig. 2/4 per-word optimum.
  for (int k = 3; k <= 7; ++k) {
    const BlockCode table =
        solve_block_code(k, std::span<const Transform>{kPaperSubset});
    const ChainEncoder encoder(options_for(k, ChainStrategy::kOptimalDp));
    for (std::uint32_t word = 0; word < (1u << k); ++word) {
      const BitSeq original = BitSeq::from_word(word, static_cast<std::size_t>(k));
      const EncodedChain chain = encoder.encode(original);
      EXPECT_EQ(chain.stored.transitions(), table.entries[word].code_transitions)
          << "k=" << k << " word=" << word;
    }
  }
}

TEST(ChainEncoder, AllZerosAndAllOnesStayPut) {
  const ChainEncoder encoder(options_for(5, ChainStrategy::kGreedy));
  for (int fill : {0, 1}) {
    const BitSeq original(100, fill);
    const EncodedChain chain = encoder.encode(original);
    EXPECT_EQ(chain.stored, original);
    EXPECT_EQ(chain.stored.transitions(), 0);
  }
}

TEST(ChainEncoder, AlternatingStreamCollapsesToConstant) {
  // 1010... has the maximal transition count; ~x or ~y class transforms
  // should flatten it to (almost) zero transitions.
  BitSeq original(101);
  for (std::size_t i = 0; i < original.size(); ++i) original.set(i, i % 2 == 0);
  const ChainEncoder encoder(options_for(5, ChainStrategy::kOptimalDp));
  const EncodedChain chain = encoder.encode(original);
  EXPECT_EQ(decode_chain(chain), original);
  EXPECT_LE(chain.stored.transitions(), 1);
  EXPECT_EQ(original.transitions(), 100);
}

// ---------------------------------------------------------------------------
// The paper's §6 experiment: 1000-bit uniform random sequences at k=5 reduce
// by 50% within ~1%.
// ---------------------------------------------------------------------------

TEST(ChainEncoder, PaperRandomSequenceExperiment) {
  const ChainEncoder encoder(options_for(5, ChainStrategy::kGreedy));
  double total_reduction = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const BitSeq original = random_seq(1000, 0xBEEF + static_cast<std::uint32_t>(t));
    const EncodedChain chain = encoder.encode(original);
    ASSERT_EQ(decode_chain(chain), original);
    const double reduction =
        100.0 * (original.transitions() - chain.stored.transitions()) /
        original.transitions();
    EXPECT_NEAR(reduction, 50.0, 6.0);  // individual trials scatter a little
    total_reduction += reduction;
  }
  EXPECT_NEAR(total_reduction / trials, 50.0, 1.0);  // the paper's "within 1%"
}

TEST(ChainEncoder, GreedyMatchesDpOnUniformStreams) {
  // Empirical §6 claim: "the iterative approach leads in practice to optimal
  // results".
  const ChainEncoder greedy(options_for(5, ChainStrategy::kGreedy));
  const ChainEncoder dp(options_for(5, ChainStrategy::kOptimalDp));
  int mismatches = 0;
  for (std::uint32_t seed = 0; seed < 60; ++seed) {
    const BitSeq original = random_seq(1000, 0xD00D + seed);
    if (greedy.encode(original).stored.transitions() !=
        dp.encode(original).stored.transitions()) {
      ++mismatches;
    }
  }
  EXPECT_LE(mismatches, 1);
}

// ---------------------------------------------------------------------------
// Validation and error handling.
// ---------------------------------------------------------------------------

TEST(ChainEncoder, RejectsBadOptions) {
  ChainOptions opt;
  opt.block_size = 1;
  EXPECT_THROW(ChainEncoder{opt}, std::invalid_argument);
  opt.block_size = 17;
  EXPECT_THROW(ChainEncoder{opt}, std::invalid_argument);
  opt.block_size = 5;
  opt.allowed = {};
  EXPECT_THROW(ChainEncoder{opt}, std::invalid_argument);
}

TEST(ChainEncoder, EmptyStream) {
  const ChainEncoder encoder(options_for(5, ChainStrategy::kGreedy));
  const EncodedChain chain = encoder.encode(BitSeq{});
  EXPECT_TRUE(chain.stored.empty());
  EXPECT_TRUE(chain.blocks.empty());
  EXPECT_TRUE(decode_chain(chain).empty());
}

TEST(ChainEncoder, BlocksUseOnlyAllowedTransforms) {
  const ChainEncoder encoder(options_for(5, ChainStrategy::kGreedy));
  const BitSeq original = random_seq(123, 0xFEED);
  for (const ChainBlock& block : encoder.encode(original).blocks) {
    EXPECT_GE(paper_subset_index(block.tau), 0);
  }
}

TEST(ChainEncoder, RestrictedSetStillRoundTrips) {
  // Even the degenerate {identity} set must work (and change nothing).
  static constexpr std::array<Transform, 1> identity_only = {kIdentity};
  ChainOptions opt;
  opt.block_size = 4;
  opt.allowed = std::span<const Transform>{identity_only};
  opt.strategy = ChainStrategy::kGreedy;
  const ChainEncoder encoder(opt);
  const BitSeq original = random_seq(57, 3);
  const EncodedChain chain = encoder.encode(original);
  EXPECT_EQ(chain.stored, original);
  EXPECT_EQ(decode_chain(chain), original);
}

}  // namespace
}  // namespace asimt::core
