// Hot-block selection under the Transformation Table budget (paper §7).
//
// The TT is a small SRAM (16 entries in the paper's evaluation), so only the
// basic blocks that contribute most dynamic bus activity earn entries. Cold
// blocks stay unencoded in memory (equivalently: identity transformation).
// Selection is a greedy benefit/cost knapsack: benefit = statically saved
// transitions x dynamic execution count, cost = TT entries required.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cfg/cfg.h"
#include "core/program_encoder.h"

namespace asimt::core {

enum class SelectionPolicy {
  kGreedyDensity,    // benefit per TT entry, descending (default)
  kOptimalKnapsack,  // exact 0/1 knapsack over the TT budget
};

struct SelectionOptions {
  ChainOptions chain;         // block size, transform set, strategy
  int tt_budget = 16;         // paper §8: "up to 16 entries"
  int bbit_budget = 16;       // paper §7.2: "typically ... in the range of 10"
  std::uint64_t min_executions = 2;  // ignore blocks colder than this
  SelectionPolicy policy = SelectionPolicy::kGreedyDensity;
};

struct SelectionResult {
  std::vector<BlockEncoding> encodings;  // chosen blocks, encode order = TT order
  TtConfig tt;
  std::vector<BbitEntry> bbit;
  int tt_entries_used = 0;
  // Predicted dynamic intra-block transition savings (selection's objective;
  // the harness measures the true value including block-boundary effects).
  long long predicted_dynamic_savings = 0;

  // Patches the encoded words of every selected block into a copy of the
  // original text segment, producing the image the instruction memory holds.
  std::vector<std::uint32_t> apply_to_text(
      std::span<const std::uint32_t> original_text,
      std::uint32_t text_base) const;
};

SelectionResult select_and_encode(const cfg::Cfg& cfg,
                                  const cfg::Profile& profile,
                                  const SelectionOptions& options);

}  // namespace asimt::core
