#include "check/oracles.h"

#include <algorithm>
#include <stdexcept>

#include "bitstream/bitseq.h"
#include "bitstream/reference.h"
#include "core/fetch_decoder.h"
#include "core/program_encoder.h"
#include "core/reference_encoder.h"
#include "sim/bus.h"
#include "telemetry/json.h"

namespace asimt::check {

namespace {

std::string describe(const FuzzCase& c) {
  std::string out = "[oracle=";
  out += oracle_name(c.oracle);
  out += " k=" + std::to_string(c.block_size);
  out += " transforms=";
  out += transform_set_name(c.transforms);
  if (c.oracle == Oracle::kRoundTrip) {
    out += c.strategy == core::ChainStrategy::kGreedy ? " strategy=greedy"
                                                      : " strategy=dp";
  }
  if (c.oracle == Oracle::kJson) {
    out += " json=" + std::to_string(c.json_text.size()) + "B";
  } else if (c.oracle == Oracle::kReplay) {
    out += " words=" + std::to_string(c.words.size());
  } else {
    out += " bits=" + std::to_string(c.line.size());
  }
  out += "] ";
  return out;
}

// Checks that `chain` covers `m` bits with the canonical partition.
std::optional<std::string> check_partition(const core::EncodedChain& chain,
                                           std::size_t m, int block_size) {
  const auto layout = core::ChainEncoder::partition(m, block_size);
  if (chain.blocks.size() != layout.size()) {
    return "block count " + std::to_string(chain.blocks.size()) +
           " != canonical partition " + std::to_string(layout.size());
  }
  for (std::size_t i = 0; i < layout.size(); ++i) {
    if (chain.blocks[i].start != layout[i].start ||
        chain.blocks[i].length != layout[i].length) {
      return "block " + std::to_string(i) + " spans [" +
             std::to_string(chain.blocks[i].start) + "," +
             std::to_string(chain.blocks[i].length) + "] != canonical [" +
             std::to_string(layout[i].start) + "," +
             std::to_string(layout[i].length) + "]";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_roundtrip(const core::EncodedChain& chain,
                                           const bits::BitSeq& line,
                                           const OracleHooks& hooks,
                                           const char* tag) {
  if (chain.stored.size() != line.size()) {
    return std::string(tag) + ": stored length " +
           std::to_string(chain.stored.size()) + " != input length " +
           std::to_string(line.size());
  }
  if (!line.empty() && chain.stored[0] != line[0]) {
    return std::string(tag) + ": chain-initial bit stored encoded (" +
           std::to_string(chain.stored[0]) + "), must be plain (" +
           std::to_string(line[0]) + ")";
  }
  const bits::BitSeq via_core = core::decode_chain(chain);
  if (via_core != line) {
    return std::string(tag) + ": decode_chain mismatch: stored=" +
           chain.stored.to_stream_string() + " decoded=" +
           via_core.to_stream_string() + " original=" + line.to_stream_string();
  }
  const bits::BitSeq via_reference = decode_chain_reference(chain, hooks);
  if (via_reference != line) {
    return std::string(tag) + ": reference decoder mismatch: stored=" +
           chain.stored.to_stream_string() + " decoded=" +
           via_reference.to_stream_string() + " original=" +
           line.to_stream_string();
  }
  return std::nullopt;
}

std::optional<std::string> oracle_roundtrip(const FuzzCase& c,
                                            const OracleHooks& hooks) {
  core::ChainOptions options;
  options.block_size = c.block_size;
  options.allowed = c.transform_span();
  options.strategy = c.strategy;
  const core::ChainEncoder encoder(options);
  const core::EncodedChain chain = encoder.encode(c.line);
  if (auto err = check_partition(chain, c.line.size(), c.block_size)) return err;
  return check_roundtrip(chain, c.line, hooks, "roundtrip");
}

std::optional<std::string> oracle_cost(const FuzzCase& c,
                                       const OracleHooks& hooks) {
  core::ChainOptions options;
  options.block_size = c.block_size;
  options.allowed = c.transform_span();
  options.strategy = core::ChainStrategy::kGreedy;
  const core::EncodedChain greedy = core::ChainEncoder(options).encode(c.line);
  options.strategy = core::ChainStrategy::kOptimalDp;
  const core::EncodedChain dp = core::ChainEncoder(options).encode(c.line);
  if (auto err = check_roundtrip(greedy, c.line, hooks, "greedy")) return err;
  if (auto err = check_roundtrip(dp, c.line, hooks, "dp")) return err;
  const int greedy_cost = greedy.stored.transitions();
  const int dp_cost = dp.stored.transitions();
  if (dp_cost > greedy_cost) {
    return "DP cost " + std::to_string(dp_cost) + " exceeds greedy cost " +
           std::to_string(greedy_cost) + " on " + c.line.to_stream_string();
  }
  if (c.line.size() <= kExhaustiveMaxBits) {
    const std::optional<int> best =
        exhaustive_min_transitions(c.line, c.block_size, c.transform_span());
    if (!best) {
      return "exhaustive search found no feasible encoding, DP found cost " +
             std::to_string(dp_cost);
    }
    if (*best != dp_cost) {
      return "DP cost " + std::to_string(dp_cost) +
             " != exhaustive optimum " + std::to_string(*best) + " on " +
             c.line.to_stream_string();
    }
  }
  return std::nullopt;
}

std::optional<std::string> oracle_replay(const FuzzCase& c) {
  constexpr std::uint32_t kStartPc = 0x1000;
  core::ChainOptions options;
  options.block_size = c.block_size;
  options.allowed = c.transform_span();
  options.strategy = c.strategy;
  const core::BlockEncoding enc =
      core::encode_basic_block(c.words, kStartPc, options);

  if (enc.encoded_words.size() != c.words.size()) {
    return "encoded word count " + std::to_string(enc.encoded_words.size()) +
           " != input count " + std::to_string(c.words.size());
  }
  const long long original = bits::total_bus_transitions(c.words);
  if (enc.original_transitions != original) {
    return "reported original_transitions " +
           std::to_string(enc.original_transitions) + " != recount " +
           std::to_string(original);
  }
  const long long encoded = bits::total_bus_transitions(enc.encoded_words);
  if (enc.encoded_transitions != encoded) {
    return "reported encoded_transitions " +
           std::to_string(enc.encoded_transitions) + " != recount " +
           std::to_string(encoded);
  }

  // Software block-structured decode.
  const std::vector<std::uint32_t> block_decoded = core::decode_basic_block(
      enc.encoded_words, enc.tt_entries, c.block_size);
  if (block_decoded != enc.original_words) {
    return "decode_basic_block does not restore the original words";
  }

  if (c.words.empty()) return std::nullopt;

  // Cycle-level hardware model: feed the encoded image's fetch stream and
  // count what the bus monitor sees while the decoder restores words.
  core::TtConfig tt;
  tt.block_size = c.block_size;
  tt.entries = enc.tt_entries;
  core::FetchDecoder decoder(tt, {{kStartPc, 0}});
  sim::BusMonitor monitor;
  for (std::size_t i = 0; i < c.words.size(); ++i) {
    const std::uint32_t bus = enc.encoded_words[i];
    monitor.observe(bus);
    const std::uint32_t restored =
        decoder.feed(kStartPc + 4 * static_cast<std::uint32_t>(i), bus);
    if (restored != c.words[i]) {
      return "FetchDecoder mismatch at word " + std::to_string(i) +
             ": restored " + std::to_string(restored) + " != original " +
             std::to_string(c.words[i]);
    }
  }
  if (decoder.stats().fetches != c.words.size() ||
      decoder.stats().decoded != c.words.size()) {
    return "FetchDecoder stats: fetches=" +
           std::to_string(decoder.stats().fetches) + " decoded=" +
           std::to_string(decoder.stats().decoded) + ", expected both " +
           std::to_string(c.words.size());
  }
  if (monitor.total_transitions() != enc.encoded_transitions) {
    return "BusMonitor saw " + std::to_string(monitor.total_transitions()) +
           " transitions on the encoded stream, encoder reported " +
           std::to_string(enc.encoded_transitions);
  }
  return std::nullopt;
}

std::optional<std::string> oracle_json(const FuzzCase& c) {
  json::Value parsed;
  try {
    parsed = json::parse(c.json_text);
  } catch (const json::ParseError& e) {
    return std::string("seed document does not parse: ") + e.what();
  }
  const std::string first = parsed.dump();
  json::Value reparsed;
  try {
    reparsed = json::parse(first);
  } catch (const json::ParseError& e) {
    return "emitted document does not parse back: " + first + " (" + e.what() +
           ")";
  }
  const std::string second = reparsed.dump();
  if (first != second) {
    return "export not byte-stable: '" + first + "' re-exports as '" + second +
           "'";
  }
  if (!(reparsed == parsed)) {
    return "parse(dump(v)) != v for '" + first + "'";
  }
  // Pretty-printing must not change the value either.
  json::Value pretty_reparsed;
  try {
    pretty_reparsed = json::parse(parsed.dump(2));
  } catch (const json::ParseError& e) {
    return std::string("pretty-printed document does not parse back: ") +
           e.what();
  }
  if (!(pretty_reparsed == parsed)) {
    return "pretty round-trip changed the value of '" + first + "'";
  }
  return std::nullopt;
}

// The bit-plane differential oracle: every packed word-parallel kernel must
// agree exactly with the scalar byte-per-bit oracle (bitstream/reference.h,
// core/reference_encoder.h) on the same input — transition counts, windowed
// counts across word seams, and both encode strategies bit for bit.
std::optional<std::string> oracle_bitplane(const FuzzCase& c) {
  const bits::reference::BitSeq scalar = bits::reference::from_packed(c.line);
  if (bits::reference::to_packed(scalar) != c.line) {
    return "packed <-> scalar conversion is not lossless on " +
           c.line.to_stream_string();
  }
  if (c.line.transitions() != scalar.transitions()) {
    return "packed transitions " + std::to_string(c.line.transitions()) +
           " != scalar " + std::to_string(scalar.transitions()) + " on " +
           c.line.to_stream_string();
  }
  if (!c.line.empty()) {
    // Windows anchored at the ends, the middle, and every 64-bit seam.
    std::vector<std::size_t> edges = {0, c.line.size() / 2, c.line.size() - 1};
    for (std::size_t seam = 63; seam < c.line.size(); seam += 64) {
      edges.push_back(seam);
      if (seam + 1 < c.line.size()) edges.push_back(seam + 1);
    }
    for (const std::size_t first : edges) {
      for (const std::size_t last : edges) {
        if (last < first) continue;
        if (c.line.transitions_in(first, last) !=
            scalar.transitions_in(first, last)) {
          return "transitions_in(" + std::to_string(first) + ", " +
                 std::to_string(last) + ") packed " +
                 std::to_string(c.line.transitions_in(first, last)) +
                 " != scalar " +
                 std::to_string(scalar.transitions_in(first, last)) + " on " +
                 c.line.to_stream_string();
        }
      }
    }
  }
  core::ChainOptions options;
  options.block_size = c.block_size;
  options.allowed = c.transform_span();
  for (const core::ChainStrategy strategy :
       {core::ChainStrategy::kGreedy, core::ChainStrategy::kOptimalDp}) {
    options.strategy = strategy;
    const char* tag =
        strategy == core::ChainStrategy::kGreedy ? "greedy" : "dp";
    const core::EncodedChain fast =
        core::ChainEncoder(options).encode(c.line);
    const core::EncodedChain oracle =
        core::reference::encode_chain(c.line, options);
    if (fast.blocks.size() != oracle.blocks.size()) {
      return std::string(tag) + ": packed encoder made " +
             std::to_string(fast.blocks.size()) + " blocks, scalar oracle " +
             std::to_string(oracle.blocks.size());
    }
    if (fast.stored != oracle.stored) {
      return std::string(tag) + ": stored bits diverge: packed=" +
             fast.stored.to_stream_string() + " scalar=" +
             oracle.stored.to_stream_string() + " original=" +
             c.line.to_stream_string();
    }
    for (std::size_t bi = 0; bi < fast.blocks.size(); ++bi) {
      if (fast.blocks[bi].tau != oracle.blocks[bi].tau) {
        return std::string(tag) + ": block " + std::to_string(bi) +
               " tau diverges: packed=" + fast.blocks[bi].tau.name() +
               " scalar=" + oracle.blocks[bi].tau.name() + " on " +
               c.line.to_stream_string();
      }
    }
    if (core::decode_chain(fast) != c.line) {
      return std::string(tag) + ": packed encoding does not round-trip: " +
             fast.stored.to_stream_string() + " vs " +
             c.line.to_stream_string();
    }
  }
  return std::nullopt;
}

}  // namespace

bits::BitSeq decode_chain_reference(const core::EncodedChain& chain,
                                    const OracleHooks& hooks) {
  const bits::BitSeq& stored = chain.stored;
  bits::BitSeq original(stored.size());
  if (stored.empty()) return original;
  int history;
  if (hooks.break_initial_plain && !chain.blocks.empty()) {
    // Mutation: run the first bit through its block's τ with zero history.
    const int broken = chain.blocks.front().tau.apply(stored[0], 0);
    original.set(0, broken);
    history = broken;
  } else {
    original.set(0, stored[0]);
    history = stored[0];
  }
  for (const core::ChainBlock& block : chain.blocks) {
    if (!hooks.break_overlap_reload) {
      history = stored[block.start];  // paper §6: reload from the raw bit
    }
    for (int j = 1; j < block.length; ++j) {
      const std::size_t pos = block.start + static_cast<std::size_t>(j);
      const int decoded = block.tau.apply(stored[pos], history);
      original.set(pos, decoded);
      history = decoded;
    }
  }
  return original;
}

std::optional<int> exhaustive_min_transitions(
    const bits::BitSeq& line, int block_size,
    std::span<const core::Transform> allowed) {
  const std::size_t m = line.size();
  if (m > kExhaustiveMaxBits) {
    throw std::invalid_argument("exhaustive_min_transitions: line too long");
  }
  if (m <= 1) return 0;
  const auto layout = core::ChainEncoder::partition(m, block_size);
  std::optional<int> best;
  // Chain-initial bit is stored plain, so enumerate the other m-1 bits.
  const std::uint32_t rest_count = std::uint32_t{1} << (m - 1);
  bits::BitSeq stored(m);
  stored.set(0, line[0]);
  for (std::uint32_t rest = 0; rest < rest_count; ++rest) {
    for (std::size_t i = 1; i < m; ++i) {
      stored.set(i, static_cast<int>((rest >> (i - 1)) & 1u));
    }
    const int cost = stored.transitions();
    if (best && cost >= *best) continue;
    bool feasible = true;
    for (const core::ChainBlock& block : layout) {
      bool block_ok = false;
      for (const core::Transform tau : allowed) {
        int history = stored[block.start];
        bool match = true;
        for (int j = 1; j < block.length && match; ++j) {
          const std::size_t pos = block.start + static_cast<std::size_t>(j);
          const int decoded = tau.apply(stored[pos], history);
          match = decoded == line[pos];
          history = decoded;
        }
        if (match) {
          block_ok = true;
          break;
        }
      }
      if (!block_ok) {
        feasible = false;
        break;
      }
    }
    if (feasible) best = cost;
  }
  return best;
}

std::optional<std::string> run_case(const FuzzCase& c,
                                    const OracleHooks& hooks) {
  std::optional<std::string> result;
  try {
    switch (c.oracle) {
      case Oracle::kRoundTrip: result = oracle_roundtrip(c, hooks); break;
      case Oracle::kCost: result = oracle_cost(c, hooks); break;
      case Oracle::kReplay: result = oracle_replay(c); break;
      case Oracle::kJson: result = oracle_json(c); break;
      case Oracle::kBitplane: result = oracle_bitplane(c); break;
    }
  } catch (const std::exception& e) {
    result = std::string("unexpected exception: ") + e.what();
  }
  if (result) result = describe(c) + *result;
  return result;
}

}  // namespace asimt::check
