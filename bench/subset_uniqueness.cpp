// E4 — §5.2's claim: "a unique subset of only 8 transformations always
// exists and provides a solution identical to the globally optimal".
// This bench runs the exhaustive subset search and reports what actually
// holds (spoiler, documented in EXPERIMENTS.md: the minimal optimal subset
// has SIX members and is unique at that size; 45 8-subsets are optimal,
// the paper's among them).
#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>

#include "core/block_code.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt::core;
  std::printf("Exhaustive search for transform subsets reaching the "
              "unrestricted optimum for every k in [2, 7]\n\n");
  std::printf("%-6s %-9s %s\n", "size", "#optimal", "first (by truth-table mask)");
  for (int size = 4; size <= 9; ++size) {
    const auto winners = optimal_subsets_of_size(size, 7);
    std::printf("%-6d %-9zu ", size, winners.size());
    if (!winners.empty()) {
      std::printf("{ ");
      for (unsigned tt = 0; tt < 16; ++tt) {
        if (winners[0] & (1u << tt)) std::printf("%s ", Transform{tt}.name().c_str());
      }
      std::printf("}");
    }
    std::printf("\n");
  }

  std::printf("\ncore-6 subset optimality for larger blocks:");
  static constexpr std::array<Transform, 6> six = {kIdentity, kInvert, kXor,
                                                   kXnor,     kNor,    kNand};
  for (int k = 8; k <= 12; ++k) {
    std::printf(" k=%d:%s", k,
                subset_is_optimal(k, std::span<const Transform>{six}) ? "yes"
                                                                      : "NO");
  }
  std::printf("\n(the paper expected the property to weaken beyond 7; it "
              "does not, at least to 12)\n");

  std::uint32_t paper_mask = 0;
  for (Transform t : kPaperSubset) paper_mask |= 1u << t.truth_table();
  const auto eights = optimal_subsets_of_size(8, 7);
  const bool paper_in = std::find(eights.begin(), eights.end(), paper_mask) != eights.end();
  std::printf(
      "\npaper's 8-subset {x ~x y ~y xor xnor nor nand} optimal: %s\n"
      "paper claim 'unique subset of 8': NOT reproduced — the minimal\n"
      "optimal subset is the SIX transforms {x ~x xor xnor nor nand},\n"
      "unique at size 6; every optimal subset is a superset of it.\n",
      paper_in ? "yes" : "NO");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("subset_uniqueness")
