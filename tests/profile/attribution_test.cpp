// The load-bearing equivalence of the profiler subsystem: analytic per-block
// attribution (attribute_dynamic) must agree block-for-block with a stream
// TransitionProfiler replaying the same execution, and both must sum to
// cfg::dynamic_transitions — on the plain text and on an encoded image.
#include "profile/attribution.h"

#include <gtest/gtest.h>

#include "cfg/cfg.h"
#include "core/selection.h"
#include "isa/assembler.h"
#include "sim/cpu.h"

namespace asimt::profile {
namespace {

// A loopy program with a branch so several blocks execute different counts.
const char kSource[] = R"(
        li      $t0, 0
        li      $t1, 53
        li      $t3, 0
loop:   addiu   $t0, $t0, 1
        andi    $t2, $t0, 3
        beq     $t2, $zero, skip
        xori    $t3, $t3, 0x2A5
skip:   bne     $t0, $t1, loop
        halt
)";

struct RunArtifacts {
  isa::Program program;
  cfg::Cfg cfg;
  cfg::Profile profile;
};

RunArtifacts run_and_profile() {
  RunArtifacts art{isa::assemble(kSource), {}, {}};
  art.cfg = cfg::build_cfg(art.program);
  sim::Memory memory;
  memory.load_program(art.program);
  sim::Cpu cpu(memory);
  cpu.state().pc = art.program.entry();
  cfg::Profiler profiler(art.cfg);
  cpu.run(1'000'000,
          [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
  EXPECT_TRUE(cpu.state().halted);
  art.profile = profiler.take();
  return art;
}

// Replays the deterministic execution, feeding the stream profiler the words
// `image` would have driven onto the bus.
TransitionProfiler replay(const RunArtifacts& art,
                          std::span<const std::uint32_t> image) {
  TransitionProfiler prof(art.cfg);
  sim::Memory memory;
  memory.load_program(art.program);
  sim::Cpu cpu(memory);
  cpu.state().pc = art.program.entry();
  cpu.run(1'000'000, [&](std::uint32_t pc, std::uint32_t) {
    prof.on_fetch(pc, image[(pc - art.cfg.text_base) / 4]);
  });
  EXPECT_TRUE(cpu.state().halted);
  return prof;
}

TEST(AttributionTest, SumsToDynamicTransitionsOnPlainText) {
  const RunArtifacts art = run_and_profile();
  const std::vector<BlockCost> costs =
      attribute_dynamic(art.cfg, art.profile, art.cfg.text);
  long long sum = 0;
  for (const BlockCost& c : costs) {
    sum += c.transitions;
    EXPECT_FALSE(c.encoded);  // no encodings passed
  }
  EXPECT_EQ(sum, cfg::dynamic_transitions(art.cfg, art.profile, art.cfg.text));
  EXPECT_GT(sum, 0);
}

TEST(AttributionTest, AgreesBlockForBlockWithStreamProfiler) {
  const RunArtifacts art = run_and_profile();
  const TransitionProfiler prof = replay(art, art.cfg.text);
  const std::vector<BlockCost> analytic =
      attribute_dynamic(art.cfg, art.profile, art.cfg.text);
  const std::vector<BlockCost> stream = prof.blocks();

  ASSERT_EQ(analytic.size(), art.cfg.blocks.size());
  ASSERT_EQ(stream.size(), art.cfg.blocks.size());  // no out-of-image slot
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    EXPECT_EQ(analytic[i].index, stream[i].index);
    EXPECT_EQ(analytic[i].transitions, stream[i].transitions)
        << "block " << i;
    EXPECT_EQ(analytic[i].exec, stream[i].exec) << "block " << i;
  }
}

TEST(AttributionTest, AgreesOnEncodedImageAndFlagsEncodedBlocks) {
  const RunArtifacts art = run_and_profile();
  core::SelectionOptions sel;
  sel.chain.block_size = 5;
  sel.tt_budget = 16;
  sel.bbit_budget = 16;
  const core::SelectionResult selection =
      core::select_and_encode(art.cfg, art.profile, sel);
  ASSERT_FALSE(selection.encodings.empty());
  const std::vector<std::uint32_t> image =
      selection.apply_to_text(art.cfg.text, art.cfg.text_base);

  const std::vector<BlockCost> analytic =
      attribute_dynamic(art.cfg, art.profile, image, selection.encodings);
  TransitionProfiler prof = replay(art, image);
  for (const core::BlockEncoding& enc : selection.encodings) {
    prof.mark_encoded(enc.start_pc, enc.encoded_words.size());
  }
  const std::vector<BlockCost> stream = prof.blocks();

  long long analytic_sum = 0;
  int encoded_blocks = 0;
  ASSERT_EQ(analytic.size(), stream.size());
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    EXPECT_EQ(analytic[i].transitions, stream[i].transitions) << "block " << i;
    EXPECT_EQ(analytic[i].encoded, stream[i].encoded) << "block " << i;
    analytic_sum += analytic[i].transitions;
    if (analytic[i].encoded) ++encoded_blocks;
  }
  EXPECT_EQ(analytic_sum, cfg::dynamic_transitions(art.cfg, art.profile, image));
  EXPECT_EQ(encoded_blocks, static_cast<int>(selection.encodings.size()));
  // Encoding must not have *increased* total dynamic cost on this workload.
  EXPECT_LE(analytic_sum,
            cfg::dynamic_transitions(art.cfg, art.profile, art.cfg.text));
}

}  // namespace
}  // namespace asimt::profile
