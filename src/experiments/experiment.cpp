#include "experiments/experiment.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "baselines/bus_codes.h"
#include "core/fetch_decoder.h"
#include "isa/assembler.h"
#include "parallel/pool.h"
#include "power/power.h"
#include "profile/attribution.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace asimt::experiments {

long long dynamic_transitions(const cfg::Cfg& cfg, const cfg::Profile& profile,
                              std::span<const std::uint32_t> image) {
  return cfg::dynamic_transitions(cfg, profile, image);
}

namespace {

// Verifies that the cycle-level FetchDecoder hardware model restores every
// original word of every selected block when fed the encoded bus stream.
void verify_selection_decodes(const core::SelectionResult& selection) {
  core::FetchDecoder decoder(selection.tt, selection.bbit);
  for (const core::BlockEncoding& enc : selection.encodings) {
    for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
      const std::uint32_t pc =
          enc.start_pc + 4 * static_cast<std::uint32_t>(i);
      const std::uint32_t decoded = decoder.feed(pc, enc.encoded_words[i]);
      if (decoded != enc.original_words[i]) {
        throw std::logic_error(
            "FetchDecoder failed to restore word at pc=" + std::to_string(pc));
      }
    }
    if (decoder.in_encoded_mode()) {
      throw std::logic_error("FetchDecoder did not exit encoded mode at block end");
    }
  }
}

}  // namespace

WorkloadResult run_workload(const workloads::Workload& workload,
                            const ExperimentOptions& options) {
  telemetry::TracePhase workload_phase("workload." + workload.name);
  telemetry::count("experiment.workloads_run");

  WorkloadResult result;
  result.name = workload.name;

  std::optional<isa::Program> program;
  {
    telemetry::TracePhase phase("assemble");
    program.emplace(isa::assemble(workload.source));
  }
  std::optional<cfg::Cfg> cfg_holder;
  {
    telemetry::TracePhase phase("cfg");
    cfg_holder.emplace(cfg::build_cfg(*program));
  }
  const cfg::Cfg& cfg = *cfg_holder;

  // --- single simulation: profile, correctness, Bus-Invert baseline -------
  sim::Memory memory;
  memory.load_program(*program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program->entry();
  workload.init(memory, cpu.state());

  cfg::Profiler profiler(cfg);
  baselines::BusInvertMonitor bus_invert;
  cfg::Profile profile;
  {
    telemetry::TracePhase phase("profile");
    const std::uint64_t steps =
        cpu.run(options.max_steps, [&](std::uint32_t pc, std::uint32_t word) {
          profiler.on_fetch(pc);
          bus_invert.observe(word);
        });
    if (!cpu.state().halted) {
      throw std::runtime_error(workload.name +
                               ": did not halt within step budget");
    }
    result.instructions = steps;
    profile = profiler.take();
  }
  result.bus_invert_transitions = bus_invert.transitions();
  telemetry::count("experiment.instructions",
                   static_cast<long long>(result.instructions));

  std::string error;
  result.check_passed = workload.check(memory, &error);
  result.check_error = error;

  // The unencoded baseline is k-independent: compute it exactly once, before
  // the sweep, and share the value with every per-k task (each reduction
  // percentage divides by this same long long, so percentages are bit-exact
  // at any job count). A regression test pins this invariance.
  result.baseline_transitions = cfg::dynamic_transitions(cfg, profile, cfg.text);

  // --- per block size: select, encode, verify, measure --------------------
  // The k values are independent given the shared profile, so the sweep fans
  // out across the parallel engine. Each task reads only const state (cfg,
  // profile, options, the hoisted baseline) and writes only its own
  // pre-sized slot; nested fan-outs inside encode_basic_block degrade to
  // serial on the workers.
  result.per_block_size.resize(options.block_sizes.size());
  parallel::parallel_for(options.block_sizes.size(), [&](std::size_t idx) {
    const int k = options.block_sizes[idx];
    telemetry::TracePhase sweep_phase("sweep.k" + std::to_string(k));
    core::SelectionOptions sel;
    sel.chain.block_size = k;
    sel.chain.strategy = options.strategy;
    sel.tt_budget = options.tt_budget;
    sel.bbit_budget = options.bbit_budget;
    // select_and_encode opens its own "encode" and "select" spans.
    const core::SelectionResult selection =
        core::select_and_encode(cfg, profile, sel);
    if (options.verify_decode) {
      telemetry::TracePhase phase("verify");
      verify_selection_decodes(selection);
    }

    telemetry::TracePhase measure_phase("measure");
    const std::vector<std::uint32_t> image =
        selection.apply_to_text(cfg.text, cfg.text_base);

    PerBlockSizeResult per;
    per.block_size = k;
    per.transitions = cfg::dynamic_transitions(cfg, profile, image);
    per.reduction_percent =
        power::reduction_percent(result.baseline_transitions, per.transitions);
    per.tt_entries_used = selection.tt_entries_used;
    per.blocks_encoded = static_cast<int>(selection.encodings.size());
    for (const core::BlockEncoding& enc : selection.encodings) {
      const int idx2 = cfg.block_starting_at(enc.start_pc);
      per.decoded_fetches +=
          profile.block_counts[static_cast<std::size_t>(idx2)] *
          enc.original_words.size();
    }
    if (options.hotspot_top_n > 0) {
      per.hotspots = profile::top_blocks(
          profile::attribute_dynamic(cfg, profile, image, selection.encodings),
          static_cast<std::size_t>(options.hotspot_top_n));
    }
    telemetry::count("experiment.measured_configs");
    result.per_block_size[idx] = per;
  });
  return result;
}

std::vector<WorkloadResult> run_workloads(
    std::span<const workloads::Workload> suite,
    const ExperimentOptions& options) {
  // One task per workload; inside a worker the per-k sweep runs serially
  // (nested fan-outs degrade), so whichever level saturates the pool first
  // wins. Slot order matches `suite` order regardless of completion order.
  return parallel::parallel_map(suite.size(), [&](std::size_t i) {
    return run_workload(suite[i], options);
  });
}

json::Value to_json(const PerBlockSizeResult& result) {
  json::Value out = json::Value::object();
  out.set("block_size", result.block_size);
  out.set("transitions", result.transitions);
  out.set("reduction_percent", result.reduction_percent);
  out.set("tt_entries_used", result.tt_entries_used);
  out.set("blocks_encoded", result.blocks_encoded);
  out.set("decoded_fetches", result.decoded_fetches);
  if (!result.hotspots.empty()) {
    json::Value hotspots = json::Value::array();
    for (const profile::BlockCost& h : result.hotspots) {
      json::Value entry = json::Value::object();
      entry.set("block", h.index);
      entry.set("start_pc", static_cast<long long>(h.start_pc));
      entry.set("exec", h.exec);
      entry.set("transitions", h.transitions);
      entry.set("encoded", h.encoded);
      hotspots.push_back(std::move(entry));
    }
    out.set("hotspots", std::move(hotspots));
  }
  return out;
}

json::Value to_json(const WorkloadResult& result) {
  json::Value out = json::Value::object();
  out.set("name", result.name);
  out.set("instructions", result.instructions);
  out.set("baseline_transitions", result.baseline_transitions);
  out.set("bus_invert_transitions", result.bus_invert_transitions);
  out.set("check_passed", result.check_passed);
  if (!result.check_error.empty()) out.set("check_error", result.check_error);
  json::Value per = json::Value::array();
  for (const PerBlockSizeResult& p : result.per_block_size) {
    per.push_back(to_json(p));
  }
  out.set("per_block_size", std::move(per));
  return out;
}

json::Value to_json(const std::vector<WorkloadResult>& results) {
  json::Value out = json::Value::array();
  for (const WorkloadResult& r : results) out.push_back(to_json(r));
  return out;
}

std::string format_fig6_table(const std::vector<WorkloadResult>& results) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-14s", "");
  out += buf;
  for (const WorkloadResult& r : results) {
    std::snprintf(buf, sizeof buf, "%10s", r.name.c_str());
    out += buf;
  }
  out += '\n';

  auto row_label = [&](const std::string& label) {
    std::snprintf(buf, sizeof buf, "%-14s", label.c_str());
    out += buf;
  };

  row_label("#TR");
  for (const WorkloadResult& r : results) {
    std::snprintf(buf, sizeof buf, "%10.2f",
                  static_cast<double>(r.baseline_transitions) / 1e6);
    out += buf;
  }
  out += '\n';

  const std::size_t sweeps = results.empty() ? 0 : results[0].per_block_size.size();
  for (std::size_t s = 0; s < sweeps; ++s) {
    row_label("#" + std::to_string(results[0].per_block_size[s].block_size) +
              "-block");
    for (const WorkloadResult& r : results) {
      std::snprintf(buf, sizeof buf, "%10.2f",
                    static_cast<double>(r.per_block_size[s].transitions) / 1e6);
      out += buf;
    }
    out += '\n';
    row_label("Reduction(%)");
    for (const WorkloadResult& r : results) {
      std::snprintf(buf, sizeof buf, "%10.1f",
                    r.per_block_size[s].reduction_percent);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

VulnerabilityTable fault_vulnerability(std::uint64_t seed,
                                       std::uint64_t iters_per_target,
                                       fault::Protection protection) {
  fault::CampaignOptions options;
  options.seed = seed;
  options.iters = iters_per_target * static_cast<std::uint64_t>(fault::kTargetCount);
  options.protection = protection;
  const fault::CampaignReport report = fault::run_campaign(options);

  VulnerabilityTable table;
  table.seed = seed;
  table.iters_per_target = iters_per_target;
  table.protection = protection;
  table.rows.reserve(report.per_target.size());
  for (const fault::TargetStats& t : report.per_target) {
    VulnerabilityRow row;
    row.target = t.target;
    row.runs = t.runs;
    row.corrupted_runs = t.corrupted_runs;
    row.corruption_rate =
        t.runs == 0 ? 0.0
                    : static_cast<double>(t.corrupted_runs) /
                          static_cast<double>(t.runs);
    row.detected = t.detected;
    row.degraded_runs = t.degraded_runs;
    row.restored_runs = t.restored_runs;
    row.blocks_escaped = t.blocks_escaped;
    row.extra_transitions = t.extra_transitions;
    table.rows.push_back(row);
  }
  return table;
}

std::string format_vulnerability_table(const VulnerabilityTable& table) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "Soft-error vulnerability (seed=%llu, %llu upsets/target, "
                "protection=%s)\n",
                static_cast<unsigned long long>(table.seed),
                static_cast<unsigned long long>(table.iters_per_target),
                std::string(fault::protection_name(table.protection)).c_str());
  out += buf;
  std::snprintf(buf, sizeof buf, "%-10s %8s %10s %8s %8s %8s %8s %10s\n",
                "target", "runs", "corrupt%", "detect", "degrade", "restore",
                "escaped", "extra_tr");
  out += buf;
  for (const VulnerabilityRow& r : table.rows) {
    std::snprintf(buf, sizeof buf,
                  "%-10s %8llu %9.1f%% %8llu %8llu %8llu %8llu %10lld\n",
                  std::string(fault::target_name(r.target)).c_str(),
                  static_cast<unsigned long long>(r.runs),
                  100.0 * r.corruption_rate,
                  static_cast<unsigned long long>(r.detected),
                  static_cast<unsigned long long>(r.degraded_runs),
                  static_cast<unsigned long long>(r.restored_runs),
                  static_cast<unsigned long long>(r.blocks_escaped),
                  r.extra_transitions);
    out += buf;
  }
  return out;
}

json::Value to_json(const VulnerabilityTable& table) {
  json::Value out = json::Value::object();
  out.set("seed", json::Value(table.seed));
  out.set("iters_per_target", json::Value(table.iters_per_target));
  out.set("protection",
          json::Value(std::string(fault::protection_name(table.protection))));
  json::Value rows = json::Value::array();
  for (const VulnerabilityRow& r : table.rows) {
    json::Value row = json::Value::object();
    row.set("target", json::Value(std::string(fault::target_name(r.target))));
    row.set("runs", json::Value(r.runs));
    row.set("corrupted_runs", json::Value(r.corrupted_runs));
    row.set("corruption_rate", json::Value(r.corruption_rate));
    row.set("detected", json::Value(r.detected));
    row.set("degraded_runs", json::Value(r.degraded_runs));
    row.set("restored_runs", json::Value(r.restored_runs));
    row.set("blocks_escaped", json::Value(r.blocks_escaped));
    row.set("extra_transitions", json::Value(r.extra_transitions));
    rows.push_back(std::move(row));
  }
  out.set("rows", std::move(rows));
  return out;
}

bool fast_mode() {
  const char* value = std::getenv("ASIMT_FAST");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

workloads::SizeConfig bench_sizes() {
  return fast_mode() ? workloads::SizeConfig::small() : workloads::SizeConfig{};
}

}  // namespace asimt::experiments
