#include "obsv/flight.h"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace asimt::obsv {

namespace {

// ---------------------------------------------------------------------------
// Async-signal-safe row formatting: a fixed stack buffer, hand-rolled
// decimal conversion, fixed enum strings. No allocation, no stdio.

struct RowBuffer {
  char data[1024];
  std::size_t len = 0;

  void put_str(const char* s) {
    while (*s != '\0' && len < sizeof(data)) data[len++] = *s++;
  }
  void put_u64(std::uint64_t v) {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0 && len < sizeof(data)) data[len++] = digits[--n];
  }
  void put_field(const char* key, std::uint64_t v) {
    put_str(",\"");
    put_str(key);
    put_str("\":");
    put_u64(v);
  }
  void put_str_field(const char* key, const char* v) {
    put_str(",\"");
    put_str(key);
    put_str("\":\"");
    put_str(v);
    put_str("\"");
  }
};

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void format_span_row(const Span& span, RowBuffer& row) {
  row.len = 0;
  row.put_str("{\"seq\":");
  row.put_u64(span.seq);
  row.put_field("conn", span.conn_id);
  row.put_field("start_ns", span.start_ns);
  static const char* const kStageKeys[kStageCount] = {
      "read_ns", "parse_ns", "cache_ns",
      "execute_ns", "serialize_ns", "write_ns"};
  for (unsigned s = 0; s < kStageCount; ++s) {
    row.put_field(kStageKeys[s], span.stage_ns[s]);
  }
  row.put_str_field("op", op_name(static_cast<Op>(span.op)));
  row.put_str_field("outcome", outcome_name(static_cast<Outcome>(span.outcome)));
  row.put_str_field("error", error_kind_name(span.error_kind));
  row.put_field("shard", span.shard);
  row.put_field("request_bytes", span.request_bytes);
  row.put_field("payload_bytes", span.payload_bytes);
  row.put_str("}\n");
}

}  // namespace

FlightRecorder::FlightRecorder(const std::string& path,
                               std::size_t ring_capacity)
    : ring_capacity_(ring_capacity) {
  const std::size_t n = std::min(path.size(), kMaxPath - 1);
  std::memcpy(path_, path.data(), n);
  path_[n] = '\0';
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    rings_[i].store(nullptr, std::memory_order_relaxed);
    busy_[i].store(false, std::memory_order_relaxed);
  }
}

FlightRecorder::~FlightRecorder() {
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    delete rings_[i].load(std::memory_order_acquire);
  }
}

SpanRing* FlightRecorder::acquire_ring(std::uint64_t conn_id) {
  // Pass 1: reuse a released ring (reset so the previous connection's spans
  // stop shadowing the new one's).
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    SpanRing* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    bool expected = false;
    if (busy_[i].compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      ring->reset();
      ring->set_conn_id(conn_id);
      return ring;
    }
  }
  // Pass 2: claim an empty slot with a fresh ring.
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    if (rings_[i].load(std::memory_order_acquire) != nullptr) continue;
    bool expected = false;
    if (!busy_[i].compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      continue;
    }
    SpanRing* fresh = new SpanRing(ring_capacity_);
    fresh->set_conn_id(conn_id);
    rings_[i].store(fresh, std::memory_order_release);
    return fresh;
  }
  // Registry exhausted (> kMaxRings live connections): share a slot. Two
  // writers on one ring can garble a row under extreme interleaving, which
  // a reader detects-or-tolerates; post-mortem coverage beats refusing.
  SpanRing* shared =
      rings_[conn_id % kMaxRings].load(std::memory_order_acquire);
  return shared != nullptr ? shared : acquire_ring(conn_id);
}

void FlightRecorder::release_ring(SpanRing* ring) {
  if (ring == nullptr) return;
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    if (rings_[i].load(std::memory_order_acquire) == ring) {
      // Contents are kept: a post-mortem dump should still show the last
      // spans of connections that already closed.
      busy_[i].store(false, std::memory_order_release);
      return;
    }
  }
}

long long FlightRecorder::dump(const char* reason) const {
  const int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return -1;
  RowBuffer row;
  row.put_str("{\"asimt_flight\":1");
  row.put_str_field("reason", reason);
  row.put_field("pid", static_cast<std::uint64_t>(::getpid()));
  row.put_str("}\n");
  bool ok = write_all(fd, row.data, row.len);
  long long rows = 0;
  for (std::size_t i = 0; ok && i < kMaxRings; ++i) {
    const SpanRing* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::size_t capacity = ring->capacity();
    for (std::size_t slot = 0; ok && slot < capacity; ++slot) {
      Span span;
      if (!ring->read_slot(slot, span)) continue;
      format_span_row(span, row);
      ok = write_all(fd, row.data, row.len);
      if (ok) ++rows;
    }
  }
  ::close(fd);
  return ok ? rows : -1;
}

std::size_t FlightRecorder::resident_spans() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    const SpanRing* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::size_t capacity = ring->capacity();
    for (std::size_t slot = 0; slot < capacity; ++slot) {
      Span span;
      if (ring->read_slot(slot, span)) ++total;
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Crash handlers

namespace {

std::atomic<FlightRecorder*> g_crash_recorder{nullptr};

const char* signal_label(int signo) {
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
  }
  return "signal";
}

void crash_handler(int signo) {
  if (const FlightRecorder* recorder =
          g_crash_recorder.load(std::memory_order_acquire)) {
    recorder->dump(signal_label(signo));
  }
  // Re-raise under the default disposition so the exit status (and any core
  // dump) is exactly what it would have been without the recorder.
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  ::sigaction(signo, &dfl, nullptr);
  ::raise(signo);
}

constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};

}  // namespace

void install_crash_handlers(FlightRecorder* recorder) {
  g_crash_recorder.store(recorder, std::memory_order_release);
  struct sigaction action {};
  if (recorder != nullptr) {
    action.sa_handler = crash_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
  } else {
    action.sa_handler = SIG_DFL;
  }
  for (const int signo : kCrashSignals) ::sigaction(signo, &action, nullptr);
}

// ---------------------------------------------------------------------------
// Reading dumps back

namespace {

std::uint64_t u64_field(const json::Value& row, const char* key) {
  return static_cast<std::uint64_t>(row.at(key).as_int());
}

Span span_from_row(const json::Value& row) {
  Span span;
  span.seq = u64_field(row, "seq");
  span.conn_id = u64_field(row, "conn");
  span.start_ns = u64_field(row, "start_ns");
  static const char* const kStageKeys[kStageCount] = {
      "read_ns", "parse_ns", "cache_ns",
      "execute_ns", "serialize_ns", "write_ns"};
  for (unsigned s = 0; s < kStageCount; ++s) {
    span.stage_ns[s] = u64_field(row, kStageKeys[s]);
  }
  // Names map back to ids; unknown strings degrade to the catch-all values
  // rather than failing the row.
  const std::string& op = row.at("op").as_string();
  span.op = static_cast<std::uint8_t>(Op::kOther);
  for (unsigned i = 0; i < kOpCount; ++i) {
    if (op == op_name(static_cast<Op>(i))) {
      span.op = static_cast<std::uint8_t>(i);
    }
  }
  const std::string& outcome = row.at("outcome").as_string();
  for (unsigned i = 0; i < kOutcomeCount; ++i) {
    if (outcome == outcome_name(static_cast<Outcome>(i))) {
      span.outcome = static_cast<std::uint8_t>(i);
    }
  }
  span.error_kind = error_kind_id(row.at("error").as_string().c_str());
  span.shard = static_cast<std::uint8_t>(u64_field(row, "shard"));
  span.request_bytes = static_cast<std::uint32_t>(u64_field(row, "request_bytes"));
  span.payload_bytes = static_cast<std::uint32_t>(u64_field(row, "payload_bytes"));
  return span;
}

}  // namespace

json::Value span_to_json(const Span& span) {
  json::Value row = json::Value::object();
  row.set("seq", span.seq);
  row.set("conn", span.conn_id);
  row.set("start_ns", span.start_ns);
  static const char* const kStageKeys[kStageCount] = {
      "read_ns", "parse_ns", "cache_ns",
      "execute_ns", "serialize_ns", "write_ns"};
  for (unsigned s = 0; s < kStageCount; ++s) {
    row.set(kStageKeys[s], span.stage_ns[s]);
  }
  row.set("op", op_name(static_cast<Op>(span.op)));
  row.set("outcome", outcome_name(static_cast<Outcome>(span.outcome)));
  row.set("error", error_kind_name(span.error_kind));
  row.set("shard", span.shard);
  row.set("request_bytes", span.request_bytes);
  row.set("payload_bytes", span.payload_bytes);
  return row;
}

FlightDump load_flight_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("flight: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  FlightDump dump;
  bool saw_header = false;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    const bool has_newline = nl != std::string::npos;
    if (!has_newline) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    try {
      const json::Value row = json::parse(line);
      if (!saw_header) {
        if (row.find("asimt_flight") == nullptr) {
          throw std::runtime_error("flight: " + path +
                                   " is not a flight-recorder dump");
        }
        dump.reason = row.at("reason").as_string();
        dump.pid = row.at("pid").as_int();
        saw_header = true;
        continue;
      }
      dump.spans.push_back(span_from_row(row));
    } catch (const std::runtime_error&) {
      if (!saw_header) throw;  // a bad header is a bad file, not a bad row
      if (!has_newline) {
        dump.truncated = true;  // the crash cut the final row short
      } else {
        ++dump.corrupt_rows;
      }
    }
  }
  if (!saw_header) {
    throw std::runtime_error("flight: " + path +
                             " is not a flight-recorder dump");
  }
  std::sort(dump.spans.begin(), dump.spans.end(),
            [](const Span& a, const Span& b) {
              return a.conn_id != b.conn_id ? a.conn_id < b.conn_id
                                            : a.seq < b.seq;
            });
  return dump;
}

std::vector<json::Value> flight_trace_events(const FlightDump& dump) {
  std::vector<json::Value> events;
  events.reserve(dump.spans.size() * (2 * kStageCount + 2));
  for (const Span& span : dump.spans) {
    const long long tid = static_cast<long long>(span.conn_id) + 1;
    std::uint64_t cursor = span.start_ns;
    std::uint64_t end = span.start_ns;
    for (unsigned s = 0; s < kStageCount; ++s) end += span.stage_ns[s];

    json::Value open = json::Value::object();
    open.set("ev", "begin");
    open.set("name", std::string(op_name(static_cast<Op>(span.op))));
    open.set("t_us", cursor / 1000);
    open.set("tid", tid);
    events.push_back(std::move(open));

    for (unsigned s = 0; s < kStageCount; ++s) {
      const std::uint64_t duration = span.stage_ns[s];
      if (duration == 0) continue;
      json::Value begin = json::Value::object();
      begin.set("ev", "begin");
      begin.set("name", std::string(stage_name(static_cast<Stage>(s))));
      begin.set("t_us", cursor / 1000);
      begin.set("tid", tid);
      events.push_back(std::move(begin));
      cursor += duration;
      json::Value finish = json::Value::object();
      finish.set("ev", "end");
      finish.set("name", std::string(stage_name(static_cast<Stage>(s))));
      finish.set("t_us", cursor / 1000);
      finish.set("tid", tid);
      events.push_back(std::move(finish));
    }

    json::Value close = json::Value::object();
    close.set("ev", "end");
    close.set("name", std::string(op_name(static_cast<Op>(span.op))));
    close.set("t_us", end / 1000);
    close.set("tid", tid);
    events.push_back(std::move(close));
  }
  return events;
}

}  // namespace asimt::obsv
