// Request deadlines and the structured overload protocol, end to end at the
// Service layer: `deadline_ms` validation, server-cap semantics (a client
// deadline can only shorten `--request-timeout-ms`), the error-kind contract
// (queue full / queue timeout -> `overloaded` + retry_after_ms, own deadline
// hit -> `timeout`, no hint), the monitoring bypass (cheap ops and cache
// hits never queue), and the client-side retry budget that consumes
// `overloaded` replies.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "serve/client.h"
#include "serve/server.h"
#include "serve/service.h"
#include "telemetry/json.h"

namespace asimt::serve {
namespace {

using Clock = std::chrono::steady_clock;

const char kProgram[] =
    ".text\n"
    "start:\n"
    "  li $t0, 12\n"
    "loop:\n"
    "  addiu $t1, $t1, 3\n"
    "  addiu $t0, $t0, -1\n"
    "  bnez $t0, loop\n"
    "  halt\n";

std::string encode_request(int id, const char* extra_fields = "") {
  json::Value req = json::Value::object();
  req.set("id", id);
  req.set("op", "encode");
  req.set("text", std::string(kProgram));
  req.set("k", 5);
  std::string line = req.dump();
  if (*extra_fields) {
    line.insert(line.size() - 1, std::string(",") + extra_fields);
  }
  return line;
}

// A service saturated at --max-inflight 1 by an externally held slot: every
// expensive request that arrives while the guard lives must shed, queue, or
// expire — deterministically, with no racing worker threads.
class SlotGuard {
 public:
  explicit SlotGuard(Service& service) : service_(service) {
    EXPECT_EQ(service_.admission().admit(), Admission::kAdmitted);
  }
  ~SlotGuard() { release(); }
  void release() {
    if (!released_) service_.admission().release();
    released_ = true;
  }

 private:
  Service& service_;
  bool released_ = false;
};

ServiceOptions saturated_options() {
  ServiceOptions options;
  options.admission.max_inflight = 1;
  options.admission.queue_depth = 0;  // every queue attempt sheds
  options.admission.queue_timeout_ms = 30;
  options.retry_after_ms = 77;
  options.recorder.enabled = false;
  return options;
}

TEST(Deadline, DeadlineFieldMustBeAPositiveInteger) {
  Service service;
  for (const char* bad : {"\"deadline_ms\":0", "\"deadline_ms\":-3",
                          "\"deadline_ms\":\"soon\"", "\"deadline_ms\":1.5"}) {
    const json::Value reply = json::parse(service.handle_line(
        encode_request(1, bad)));
    EXPECT_FALSE(reply.at("ok").as_bool()) << bad;
    EXPECT_EQ(reply.at("error").at("kind").as_string(), "bad_request") << bad;
  }
}

TEST(Deadline, QueueFullShedsWithRetryAfterHint) {
  Service service(saturated_options());
  SlotGuard guard(service);
  const json::Value reply =
      json::parse(service.handle_line(encode_request(1)));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("kind").as_string(), "overloaded");
  // The shed reply carries the server's backoff hint, verbatim.
  EXPECT_EQ(reply.at("error").at("retry_after_ms").as_int(), 77);
  EXPECT_EQ(service.overload().shed_requests.load(), 1u);
}

TEST(Deadline, QueueTimeoutYieldsOverloadedWithHint) {
  ServiceOptions options = saturated_options();
  options.admission.queue_depth = 4;  // this time the request *does* queue
  Service service(options);
  SlotGuard guard(service);
  const auto before = Clock::now();
  const json::Value reply =
      json::parse(service.handle_line(encode_request(1)));
  EXPECT_GE(Clock::now() - before, std::chrono::milliseconds(25));
  EXPECT_EQ(reply.at("error").at("kind").as_string(), "overloaded");
  EXPECT_EQ(reply.at("error").at("retry_after_ms").as_int(), 77);
  EXPECT_EQ(service.overload().queue_timeouts.load(), 1u);
  EXPECT_EQ(service.overload().shed_requests.load(), 0u);
}

TEST(Deadline, OwnDeadlineWhileQueuedYieldsTimeoutWithoutHint) {
  ServiceOptions options = saturated_options();
  options.admission.queue_depth = 4;
  options.admission.queue_timeout_ms = 10'000;  // policy alone would wait 10 s
  Service service(options);
  SlotGuard guard(service);
  const auto before = Clock::now();
  const std::string raw =
      service.handle_line(encode_request(1, "\"deadline_ms\":30"));
  // The request's own 30 ms deadline binds long before the queue policy.
  EXPECT_LT(Clock::now() - before, std::chrono::seconds(5));
  const json::Value reply = json::parse(raw);
  EXPECT_EQ(reply.at("error").at("kind").as_string(), "timeout");
  // `timeout` is the client's own fault budget — no retry hint.
  EXPECT_EQ(raw.find("retry_after_ms"), std::string::npos);
  EXPECT_EQ(service.overload().deadline_expired.load(), 1u);
}

TEST(Deadline, ClientDeadlineCannotExtendTheServerCap) {
  ServiceOptions options = saturated_options();
  options.admission.queue_depth = 4;
  options.admission.queue_timeout_ms = 10'000;
  options.request_timeout_ms = 30;  // the server cap
  Service service(options);
  SlotGuard guard(service);
  const auto before = Clock::now();
  const json::Value reply = json::parse(
      service.handle_line(encode_request(1, "\"deadline_ms\":3600000")));
  // An hour-long client deadline is clamped to the 30 ms server cap.
  EXPECT_LT(Clock::now() - before, std::chrono::seconds(5));
  EXPECT_EQ(reply.at("error").at("kind").as_string(), "timeout");
}

TEST(Deadline, CheapOpsKeepWorkingWhileTheServiceSheds) {
  Service service(saturated_options());
  SlotGuard guard(service);
  // Monitoring must not queue behind the saturated execution slots.
  const json::Value ping =
      json::parse(service.handle_line("{\"id\":1,\"op\":\"ping\"}"));
  EXPECT_TRUE(ping.at("ok").as_bool());
  const json::Value stats =
      json::parse(service.handle_line("{\"id\":2,\"op\":\"stats\"}"));
  EXPECT_TRUE(stats.at("ok").as_bool());
  // The stats reply carries the overload block the CLI renders.
  EXPECT_NE(stats.at("result").find("overload"), nullptr);
}

TEST(Deadline, CacheHitsBypassAdmission) {
  Service service(saturated_options());
  // Warm the cache while the slot is free.
  const json::Value cold = json::parse(service.handle_line(encode_request(1)));
  ASSERT_TRUE(cold.at("ok").as_bool());
  SlotGuard guard(service);
  // The identical request is a cache hit: answered despite saturation.
  const json::Value hit = json::parse(service.handle_line(encode_request(1)));
  EXPECT_TRUE(hit.at("ok").as_bool());
  EXPECT_EQ(service.overload().shed_requests.load(), 0u);
}

// ---------------------------------------------------------------------------
// Client-side backoff and the retry budget

TEST(Deadline, JitteredBackoffIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 500;
  std::uint64_t state_a = 42, state_b = 42;
  for (unsigned attempt = 0; attempt < 10; ++attempt) {
    std::uint64_t ceiling = policy.base_backoff_ms;
    for (unsigned i = 0; i < attempt && ceiling < policy.max_backoff_ms; ++i) {
      ceiling *= 2;
    }
    ceiling = std::min<std::uint64_t>(ceiling, policy.max_backoff_ms);
    const std::uint64_t a = jittered_backoff_ms(state_a, attempt, policy);
    const std::uint64_t b = jittered_backoff_ms(state_b, attempt, policy);
    EXPECT_EQ(a, b) << "same seed must replay the same jitter";
    EXPECT_LE(a, ceiling);
  }
  // A different seed decorrelates (at least one of 10 draws differs).
  std::uint64_t state_c = 43;
  bool any_differ = false;
  std::uint64_t state_a2 = 42;
  for (unsigned attempt = 0; attempt < 10; ++attempt) {
    any_differ |= jittered_backoff_ms(state_c, attempt, policy) !=
                  jittered_backoff_ms(state_a2, attempt, policy);
  }
  EXPECT_TRUE(any_differ);
}

class RetryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions options;
    options.socket_path =
        "/tmp/asimt_retry_" + std::to_string(::getpid()) + ".sock";
    options.service = saturated_options();
    options.service.retry_after_ms = 5;  // keep the backoff floor test-fast
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->start()) << server_->error();
    thread_ = std::thread([this] { server_->run(); });
    socket_path_ = options.socket_path;
  }

  void TearDown() override {
    server_->notify_stop();
    thread_.join();
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
  std::string socket_path_;
};

TEST_F(RetryFixture, RetryingClientRidesOutAnOverloadWindow) {
  // Saturate the daemon, let the client collect `overloaded` replies, then
  // free the slot: the client's retry must land and return the real answer.
  Service& service = server_->service();
  ASSERT_EQ(service.admission().admit(), Admission::kAdmitted);

  RetryPolicy policy;
  policy.max_attempts = 20;
  policy.base_backoff_ms = 2;
  policy.max_backoff_ms = 20;
  policy.io_timeout_ms = 5'000;
  policy.seed = 7;
  RetryingClient client(socket_path_, policy);

  std::optional<std::string> reply;
  std::thread requester(
      [&] { reply = client.roundtrip(encode_request(1)); });
  // Release the slot only after the daemon provably shed this client.
  while (service.overload().shed_requests.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.admission().release();
  requester.join();

  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_NE(reply->find("\"ok\":true"), std::string::npos);
  EXPECT_GE(client.stats().overloaded_replies, 1u);
  EXPECT_GE(client.stats().retries, 1u);
}

TEST_F(RetryFixture, RetryBudgetStopsTheStorm) {
  // With no budget, the first `overloaded` reply ends the roundtrip: one
  // attempt on the wire, zero retries, an explicit budget_exhausted count —
  // a persistently shedding server is not hammered.
  Service& service = server_->service();
  ASSERT_EQ(service.admission().admit(), Admission::kAdmitted);

  RetryPolicy policy;
  policy.max_attempts = 20;
  policy.io_timeout_ms = 5'000;
  policy.initial_budget = 0.0;
  RetryingClient client(socket_path_, policy);
  const std::optional<std::string> reply = client.roundtrip(encode_request(1));
  EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().budget_exhausted, 1u);
  EXPECT_EQ(client.stats().overloaded_replies, 1u);
  service.admission().release();
}

}  // namespace
}  // namespace asimt::serve
