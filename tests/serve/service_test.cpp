// Protocol-level tests for the serve request dispatcher: structured errors
// for every malformed-input class, correct results for each op, and the
// byte-identity contract (cold vs cached vs any --jobs count).
#include "serve/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "parallel/pool.h"
#include "telemetry/json.h"

namespace asimt::serve {
namespace {

const char kProgram[] =
    ".text\n"
    "start:\n"
    "  li $t0, 12\n"
    "loop:\n"
    "  addiu $t1, $t1, 3\n"
    "  addiu $t0, $t0, -1\n"
    "  bnez $t0, loop\n"
    "  halt\n";

std::string encode_request(const std::string& text, int id = 1, int k = 5) {
  json::Value req = json::Value::object();
  req.set("id", id);
  req.set("op", "encode");
  req.set("text", text);
  req.set("k", k);
  return req.dump();
}

json::Value reply_of(Service& service, const std::string& line) {
  return json::parse(service.handle_line(line));
}

// Every error reply must carry ok:false and a kind from the documented set.
void expect_error(Service& service, const std::string& line,
                  const std::string& kind) {
  const json::Value reply = reply_of(service, line);
  EXPECT_FALSE(reply.at("ok").as_bool()) << line;
  EXPECT_EQ(reply.at("error").at("kind").as_string(), kind) << line;
  EXPECT_FALSE(reply.at("error").at("message").as_string().empty()) << line;
}

TEST(Service, PingEchoesId) {
  Service service;
  EXPECT_EQ(service.handle_line("{\"id\":7,\"op\":\"ping\"}"),
            "{\"id\":7,\"ok\":true,\"result\":{\"pong\":true}}");
  // String ids round-trip too.
  EXPECT_EQ(service.handle_line("{\"id\":\"a-7\",\"op\":\"ping\"}"),
            "{\"id\":\"a-7\",\"ok\":true,\"result\":{\"pong\":true}}");
}

TEST(Service, MalformedRequestsGetStructuredErrorsNeverThrow) {
  Service service;
  expect_error(service, "this is not json", "parse");
  expect_error(service, "{\"id\":1,\"op\":\"ping\"", "parse");  // truncated
  expect_error(service, "[1,2,3]", "parse");  // not an object
  expect_error(service, "{\"id\":1}", "bad_request");  // missing op
  expect_error(service, "{\"id\":1,\"op\":42}", "bad_request");
  expect_error(service, "{\"id\":1,\"op\":\"frobnicate\"}", "bad_request");
  expect_error(service, "{\"id\":[1],\"op\":\"ping\"}", "bad_request");
  expect_error(service, "{\"id\":1,\"op\":\"encode\"}", "bad_request");
  expect_error(service, "{\"id\":1,\"op\":\"encode\",\"text\":17}",
               "bad_request");
  expect_error(service,
               "{\"id\":1,\"op\":\"encode\",\"text\":\".text\\n halt\\n\","
               "\"k\":1}",
               "bad_request");  // k below min
  expect_error(service,
               "{\"id\":1,\"op\":\"encode\",\"text\":\".text\\n halt\\n\","
               "\"k\":99}",
               "bad_request");  // k above max
  expect_error(service,
               "{\"id\":1,\"op\":\"encode\",\"text\":\".text\\n halt\\n\","
               "\"k\":\"five\"}",
               "bad_request");
  expect_error(service,
               "{\"id\":1,\"op\":\"encode\",\"text\":\".text\\n halt\\n\","
               "\"strategy\":\"psychic\"}",
               "bad_request");
  expect_error(service,
               "{\"id\":1,\"op\":\"encode\",\"text\":\".text\\n halt\\n\","
               "\"transforms\":\"imaginary\"}",
               "bad_request");
  // 14 malformed requests, 14 error replies, zero crashes.
  EXPECT_EQ(service.errors(), 14u);
  EXPECT_EQ(service.requests(), 14u);
}

TEST(Service, AssemblyErrorsAreTheirOwnKindWithLineDiagnostics) {
  Service service;
  json::Value req = json::Value::object();
  req.set("id", 1);
  req.set("op", "encode");
  req.set("text", ".text\n  li $t0, banana\n  halt\n");
  const json::Value reply = reply_of(service, req.dump());
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("kind").as_string(), "assembly");
  // The assembler diagnostic (with its line number) reaches the client.
  EXPECT_NE(reply.at("error").at("message").as_string().find("line 2"),
            std::string::npos);
}

TEST(Service, OversizedTextIsRejectedNotEncoded) {
  ServiceOptions options;
  options.max_text_bytes = 64;
  Service service(options);
  expect_error(service, encode_request(std::string(100, 'x')), "bad_request");
}

TEST(Service, EncodeReportsTransitionSavings) {
  Service service;
  const json::Value reply = reply_of(service, encode_request(kProgram));
  ASSERT_TRUE(reply.at("ok").as_bool());
  const json::Value& result = reply.at("result");
  EXPECT_EQ(result.at("instructions").as_int(), 5);
  EXPECT_EQ(result.at("k").as_int(), 5);
  EXPECT_GT(result.at("original_transitions").as_int(), 0);
  EXPECT_LT(result.at("encoded_transitions").as_int(),
            result.at("original_transitions").as_int());
  EXPECT_EQ(result.at("saved_transitions").as_int(),
            result.at("original_transitions").as_int() -
                result.at("encoded_transitions").as_int());
}

TEST(Service, VerifyConfirmsRoundtrip) {
  Service service;
  json::Value req = json::Value::object();
  req.set("id", 1);
  req.set("op", "verify");
  req.set("text", kProgram);
  const json::Value reply = reply_of(service, req.dump());
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(reply.at("result").at("roundtrip_ok").as_bool());
  EXPECT_EQ(reply.at("result").at("roundtrip_mismatches").as_int(), 0);
  EXPECT_EQ(reply.at("result").at("lines_checked").as_int(), 32);
}

TEST(Service, ProfileExecutesTheProgram) {
  Service service;
  json::Value req = json::Value::object();
  req.set("id", 1);
  req.set("op", "profile");
  req.set("text", kProgram);
  const json::Value reply = reply_of(service, req.dump());
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(reply.at("result").at("halted").as_bool());
  // 12 loop iterations × 3 instructions + prologue/halt.
  EXPECT_GT(reply.at("result").at("instructions").as_int(), 30);
  EXPECT_GT(reply.at("result").at("bus_transitions").as_int(), 0);
}

TEST(Service, ProfileStepCapIsEnforced) {
  ServiceOptions options;
  options.max_profile_steps = 1000;
  Service service(options);
  json::Value req = json::Value::object();
  req.set("id", 1);
  req.set("op", "profile");
  req.set("text", kProgram);
  req.set("max_steps", 5000);
  expect_error(service, req.dump(), "bad_request");
}

TEST(Service, CachedReplyIsByteIdenticalToColdEncode) {
  Service service;
  const std::string request = encode_request(kProgram);
  const std::string cold = service.handle_line(request);
  const std::string warm = service.handle_line(request);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(service.cache().stats().hits, 1u);
  EXPECT_EQ(service.cache().stats().misses, 1u);
}

TEST(Service, CacheIsContentAddressedAcrossTextualVariants) {
  Service service;
  // Same instructions, different comments/whitespace: same assembled image,
  // so the second request must hit the first one's cache entry.
  const std::string variant =
      ".text\n"
      "start:   # entry\n"
      "  li $t0, 12     # counter\n"
      "loop:\n"
      "  addiu $t1, $t1, 3\n"
      "  addiu $t0, $t0, -1\n"
      "  bnez $t0, loop\n"
      "  halt\n";
  const std::string first = service.handle_line(encode_request(kProgram));
  const std::string second = service.handle_line(encode_request(variant));
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.cache().stats().hits, 1u);
}

TEST(Service, DistinctParametersGetDistinctEntries) {
  Service service;
  const std::string k5 = service.handle_line(encode_request(kProgram, 1, 5));
  const std::string k6 = service.handle_line(encode_request(kProgram, 1, 6));
  EXPECT_NE(k5, k6);
  EXPECT_EQ(service.cache().stats().misses, 2u);
  EXPECT_EQ(service.cache().stats().entries, 2u);
}

TEST(Service, ReplyBytesIdenticalAtAnyJobsCount) {
  // The determinism contract across the thread pool: the reply for one
  // request is byte-identical whether the encode ran serial or on 8
  // workers, cold or cached.
  const std::string request = encode_request(kProgram);
  std::vector<std::string> replies;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    parallel::set_default_jobs(jobs);
    Service service;  // fresh cache: every reply here is a cold encode
    replies.push_back(service.handle_line(request));
    replies.push_back(service.handle_line(request));  // and a cached one
  }
  parallel::set_default_jobs(0);  // restore automatic sizing
  for (const std::string& reply : replies) EXPECT_EQ(reply, replies[0]);
}

TEST(Service, StatsReportsCacheAndRequestCounters) {
  Service service;
  service.handle_line(encode_request(kProgram));
  service.handle_line(encode_request(kProgram));
  service.handle_line("garbage");
  const json::Value reply = reply_of(service, "{\"id\":9,\"op\":\"stats\"}");
  ASSERT_TRUE(reply.at("ok").as_bool());
  const json::Value& result = reply.at("result");
  EXPECT_EQ(result.at("requests").as_int(), 4);  // including this stats call
  EXPECT_EQ(result.at("errors").as_int(), 1);
  EXPECT_EQ(result.at("cache").at("hits").as_int(), 1);
  EXPECT_EQ(result.at("cache").at("misses").as_int(), 1);
  EXPECT_EQ(result.at("cache").at("entries").as_int(), 1);
}

TEST(Service, ErrorReplyHelperCountsLikeARequest) {
  Service service;
  const std::string reply = service.error_reply("bad_request", "too big");
  const json::Value parsed = json::parse(reply);
  EXPECT_TRUE(parsed.at("id").is_null());
  EXPECT_FALSE(parsed.at("ok").as_bool());
  EXPECT_EQ(parsed.at("error").at("kind").as_string(), "bad_request");
  EXPECT_EQ(service.requests(), 1u);
  EXPECT_EQ(service.errors(), 1u);
}

}  // namespace
}  // namespace asimt::serve
