// Differential oracles: independent implementations of the encoder/decoder
// contract cross-checked against each other (paper §6/§7; verification style
// after Valentini & Chiani's exhaustive-oracle validation of bus encoders).
//
// Each oracle takes a FuzzCase and returns nullopt on success or a
// human-readable failure description. Oracles never bail on "weird" inputs —
// an input the subsystem cannot handle IS a failure; that is the point.
#pragma once

#include <optional>
#include <string>

#include "check/fuzz_case.h"

namespace asimt::check {

// Mutation-testing hooks: each flag deliberately breaks one rule of the
// decode contract inside the oracle's reference decoder. A healthy oracle
// suite must flag every mutation within a small iteration budget (the
// MutationCheck tests); a mutation that survives means the oracle has a
// blind spot, not that the code is fine.
struct OracleHooks {
  // Break paper §6's overlap rule: keep the running decoded history across
  // block boundaries instead of reloading it from the raw stored overlap bit
  // ("τ uses the encoded bit value in the initial instance").
  bool break_overlap_reload = false;
  // Break chain-initial plain storage: decode the first chain bit through
  // its block's τ instead of passing it through.
  bool break_initial_plain = false;

  bool any() const { return break_overlap_reload || break_initial_plain; }
};

// Reference chain decoder with the mutation hooks applied. With default
// hooks this mirrors core::decode_chain bit for bit (and the round-trip
// oracle cross-checks the two).
bits::BitSeq decode_chain_reference(const core::EncodedChain& chain,
                                    const OracleHooks& hooks = {});

// Exhaustive minimum stored-transition count over every stored sequence and
// per-block transform assignment that decodes back to `line` — the ground
// truth the DP is checked against. Cost is O(2^m); callers gate on
// line.size() <= kExhaustiveMaxBits. Returns nullopt when no feasible
// encoding exists (impossible for transform sets containing the identity).
inline constexpr std::size_t kExhaustiveMaxBits = 12;
std::optional<int> exhaustive_min_transitions(
    const bits::BitSeq& line, int block_size,
    std::span<const core::Transform> allowed);

// Runs the case's oracle. Returns nullopt on success, else a failure
// description that embeds the offending input shapes.
std::optional<std::string> run_case(const FuzzCase& c,
                                    const OracleHooks& hooks = {});

}  // namespace asimt::check
