// Open-loop load generator for the serve daemon (`asimt loadgen`).
//
// Models the arrival process of independent clients the way mutated-style
// load generators do: each connection draws exponential inter-arrival gaps
// from a seeded PRNG and sends at those *scheduled* instants, never waiting
// for the previous reply. Latency is measured from the scheduled send time,
// so a server that stalls accumulates the queueing delay of every request
// that should have been sent meanwhile — the open-loop property that makes
// tail percentiles honest (no coordinated omission).
//
// The request mix is deterministic in (seed, conns, rate, seconds): a fixed
// pool of generated workloads, each request choosing op/program/k from the
// per-connection PRNG stream. Identical invocations replay identical
// request sequences, which is what lets CI assert on the artifact.
//
// Results are reported as a schema-v2 artifact ("bench": "serve_loadgen")
// whose rows carry stats.median like every other bench artifact, so
// `tools/benchdiff --trajectory` gates serve latency exactly like compute
// benches: latency/p50|p90|p99|p999 in milliseconds, plus req_time_ns
// (1e9 / throughput — lower-better, the gate-friendly form of throughput).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace asimt::serve {

struct LoadgenOptions {
  std::string socket_path;
  unsigned conns = 4;
  double rate = 2000.0;   // total target requests/second across connections
  double seconds = 2.0;   // send window; receive drains past it
  std::uint64_t seed = 42;
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t errors = 0;        // replies with "ok":false
  std::uint64_t connect_failures = 0;
  double elapsed_seconds = 0.0;    // first scheduled send to last reply
  double throughput_rps = 0.0;     // received / elapsed
  // Client-observed latency percentiles over all received replies,
  // milliseconds, measured from the *scheduled* send instant (open loop).
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  // Server-observed latency (the "server_ns" field the daemon echoes into
  // replies when the request carries "echo_span":true — server work only,
  // no queueing/transfer). Reported side by side with the client view: the
  // gap between the two is the queueing + transport share of the tail.
  std::uint64_t server_samples = 0;  // replies that carried the echo
  double server_p50_ms = 0.0;
  double server_p90_ms = 0.0;
  double server_p99_ms = 0.0;
  double server_p999_ms = 0.0;
  double server_max_ms = 0.0;
  double server_mean_ms = 0.0;

  bool ok() const { return connect_failures == 0 && errors == 0 && received > 0; }
};

// Type-7 quantile (linear interpolation at rank h = (n-1)·q) over an
// ascending-sorted sample — the estimator every reported percentile uses.
// Unlike ceil-rank selection it does not collapse p99.9 onto the max for
// n < 1000 samples. Exposed for tests.
double interpolated_quantile(const std::vector<double>& sorted, double q);

// Runs the load and blocks until every in-flight reply is drained.
LoadgenReport run_loadgen(const LoadgenOptions& options);

// The schema-v2 artifact for `report` (manifest embedded, kFull fields).
json::Value loadgen_artifact(const LoadgenOptions& options,
                             const LoadgenReport& report);

// Console summary table.
std::string format_report(const LoadgenReport& report);

}  // namespace asimt::serve
