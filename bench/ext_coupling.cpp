// Extension bench — does the self-transition encoding also help coupling
// power? ASIMT optimizes each bus line independently; deep-submicron buses
// additionally pay for adjacent lines switching against each other. This
// bench measures both activities on the same dynamic instruction streams.
#include <cstdio>

#include "cfg/cfg.h"
#include "core/selection.h"
#include "isa/assembler.h"
#include "power/coupling.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "workloads/workload.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  std::printf("self vs coupling activity, k=5, 16-entry TT (reduced sizes)\n");
  std::printf("%-6s %12s %12s %12s %12s %10s %10s\n", "bench", "self base",
              "self enc", "coup base", "coup enc", "self red%", "coup red%");

  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);

    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    const cfg::Profile profile = profiler.take();

    core::SelectionOptions sel;
    sel.chain.block_size = 5;
    const core::SelectionResult selection = core::select_and_encode(cfg, profile, sel);
    const sim::TextImage image(cfg.text_base,
                               selection.apply_to_text(cfg.text, cfg.text_base));

    sim::Memory memory2;
    memory2.load_program(program);
    sim::Cpu cpu2(memory2);
    cpu2.state().pc = program.entry();
    w.init(memory2, cpu2.state());
    sim::BusMonitor self_base, self_enc;
    power::CouplingMonitor coup_base, coup_enc;
    cpu2.run(50'000'000, [&](std::uint32_t pc, std::uint32_t word) {
      const std::uint32_t bus = image.contains(pc) ? image.word_at(pc) : word;
      self_base.observe(word);
      coup_base.observe(word);
      self_enc.observe(bus);
      coup_enc.observe(bus);
    });

    auto pct = [](long long base, long long enc) {
      return base == 0 ? 0.0
                       : 100.0 * static_cast<double>(base - enc) / static_cast<double>(base);
    };
    std::printf("%-6s %12lld %12lld %12lld %12lld %9.1f%% %9.1f%%\n",
                w.name.c_str(), self_base.total_transitions(),
                self_enc.total_transitions(), coup_base.activity(),
                coup_enc.activity(),
                pct(self_base.total_transitions(), self_enc.total_transitions()),
                pct(coup_base.activity(), coup_enc.activity()));
  }
  std::printf(
      "\ncoupling activity falls roughly with self activity (fewer toggles\n"
      "means fewer coupled toggles), though less than proportionally — the\n"
      "per-line-independent optimization leaves coupling-aware encoding as\n"
      "the natural follow-up the later literature pursued.\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ext_coupling")
