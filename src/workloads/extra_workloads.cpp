// The four extra (non-paper) kernels: FIR filter, bitwise CRC-32, 8-point
// DCT-II, byte histogram. They extend the evaluation beyond the paper's
// numerical six with integer-only, branch-heavy and data-dependent-address
// code, and give the ISA/simulator broader coverage.
#include <array>
#include <cmath>
#include <cstdio>
#include <span>

#include "isa/isa.h"
#include "workloads/reference.h"
#include "workloads/workload.h"

namespace asimt::workloads {

namespace {

constexpr std::uint32_t kArrayBase = 0x20000000;

void write_floats(sim::Memory& memory, std::uint32_t addr,
                  std::span<const float> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    memory.store_float(addr + 4 * static_cast<std::uint32_t>(i), values[i]);
  }
}

void write_words(sim::Memory& memory, std::uint32_t addr,
                 std::span<const std::uint32_t> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    memory.store32(addr + 4 * static_cast<std::uint32_t>(i), values[i]);
  }
}

std::vector<float> read_floats(const sim::Memory& memory, std::uint32_t addr,
                               std::size_t count) {
  std::vector<float> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = memory.load_float(addr + 4 * static_cast<std::uint32_t>(i));
  }
  return values;
}

bool compare_floats(std::span<const float> expected,
                    std::span<const float> actual, const char* what,
                    std::string* error, float tolerance = 1e-3f) {
  if (expected.size() != actual.size()) {
    if (error) *error = std::string(what) + ": size mismatch";
    return false;
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(expected[i]));
    if (std::fabs(expected[i] - actual[i]) > tolerance * scale) {
      if (error) {
        char buf[160];
        std::snprintf(buf, sizeof buf, "%s[%zu]: expected %g, got %g", what, i,
                      static_cast<double>(expected[i]),
                      static_cast<double>(actual[i]));
        *error = buf;
      }
      return false;
    }
  }
  return true;
}

std::vector<float> random_floats(std::size_t count, std::uint32_t seed) {
  Lcg lcg(seed);
  std::vector<float> values(count);
  for (float& v : values) v = lcg.next_float();
  return values;
}

std::vector<std::uint8_t> random_bytes(std::size_t count, std::uint32_t seed) {
  Lcg lcg(seed);
  std::vector<std::uint8_t> values(count);
  for (auto& v : values) v = static_cast<std::uint8_t>(lcg.next_u32() >> 13);
  return values;
}

std::uint32_t ref_crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
  }
  return ~crc;
}

// DCT-II basis matrix, row k / column n layout (8 floats per row).
std::vector<float> dct8_matrix() {
  std::vector<float> m(64);
  for (int k = 0; k < 8; ++k) {
    const double scale = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    for (int n = 0; n < 8; ++n) {
      m[static_cast<std::size_t>(k) * 8 + static_cast<std::size_t>(n)] =
          static_cast<float>(scale * std::cos(M_PI * (2 * n + 1) * k / 16.0));
    }
  }
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// fir: direct-form FIR filter, valid mode (no boundary handling)
// ---------------------------------------------------------------------------

Workload make_fir(const SizeConfig& config) {
  const int taps = config.fir_taps;
  const int samples = config.fir_samples;
  const int outputs = samples - taps + 1;
  const std::uint32_t params_addr = kArrayBase;
  const std::uint32_t x_addr = params_addr + 64;
  const std::uint32_t h_addr = x_addr + 4 * static_cast<std::uint32_t>(samples);
  const std::uint32_t y_addr = h_addr + 4 * static_cast<std::uint32_t>(taps);

  Workload w;
  w.name = "fir";
  w.description = "FIR filter, " + std::to_string(taps) + " taps, " +
                  std::to_string(samples) + " samples";
  w.source = R"(# y[i] = sum_k h[k] * x[i+k]
# $a0 = params: 0:x 4:h 8:y 12:outputs 16:taps
        .text
fir:
        lw      $s0, 0($a0)
        lw      $s1, 4($a0)
        lw      $s2, 8($a0)
        lw      $s3, 12($a0)
        lw      $s4, 16($a0)
        li      $t0, 0               # output index
fir_i:
        li.s    $f0, 0.0
        sll     $t1, $t0, 2
        add     $t1, $s0, $t1        # &x[i]
        move    $t2, $s1             # &h[0]
        li      $t3, 0               # tap
fir_k:
        lwc1    $f1, 0($t1)
        lwc1    $f2, 0($t2)
        mul.s   $f3, $f1, $f2
        add.s   $f0, $f0, $f3
        addiu   $t1, $t1, 4
        addiu   $t2, $t2, 4
        addiu   $t3, $t3, 1
        bne     $t3, $s4, fir_k
        sll     $t4, $t0, 2
        add     $t4, $s2, $t4
        swc1    $f0, 0($t4)
        addiu   $t0, $t0, 1
        bne     $t0, $s3, fir_i
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    write_floats(memory, x_addr, random_floats(static_cast<std::size_t>(samples), 0xF1));
    write_floats(memory, h_addr, random_floats(static_cast<std::size_t>(taps), 0xF2));
    const std::uint32_t params[5] = {x_addr, h_addr, y_addr,
                                     static_cast<std::uint32_t>(outputs),
                                     static_cast<std::uint32_t>(taps)};
    write_words(memory, params_addr, params);
    state.r[isa::kA0] = params_addr;
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    const std::vector<float> x = random_floats(static_cast<std::size_t>(samples), 0xF1);
    const std::vector<float> h = random_floats(static_cast<std::size_t>(taps), 0xF2);
    std::vector<float> expected(static_cast<std::size_t>(outputs));
    for (int i = 0; i < outputs; ++i) {
      float sum = 0.0f;
      for (int k = 0; k < taps; ++k) {
        const float prod = x[static_cast<std::size_t>(i + k)] *
                           h[static_cast<std::size_t>(k)];
        sum += prod;
      }
      expected[static_cast<std::size_t>(i)] = sum;
    }
    return compare_floats(expected,
                          read_floats(memory, y_addr, static_cast<std::size_t>(outputs)),
                          "y", error);
  };
  return w;
}

// ---------------------------------------------------------------------------
// crc32: bitwise reflected CRC-32 (poly 0xEDB88320)
// ---------------------------------------------------------------------------

Workload make_crc32(const SizeConfig& config) {
  const int bytes = config.crc_bytes;
  const std::uint32_t buf_addr = kArrayBase;
  const std::uint32_t out_addr = buf_addr + static_cast<std::uint32_t>(bytes) + 64;

  Workload w;
  w.name = "crc32";
  w.description = "bitwise CRC-32 over " + std::to_string(bytes) + " bytes";
  w.source = R"(# reflected CRC-32, one bit at a time (integer-only kernel)
# $a0 = buffer, $a1 = length, $a2 = result address
        .text
crc32:
        li      $t0, -1              # running crc
        li      $t7, 0xEDB88320      # polynomial
        li      $t1, 0               # byte index
crc_byte:
        add     $t2, $a0, $t1
        lbu     $t3, 0($t2)
        xor     $t0, $t0, $t3
        li      $t4, 8
crc_bit:
        andi    $t5, $t0, 1
        srl     $t0, $t0, 1
        beq     $t5, $zero, crc_skip
        xor     $t0, $t0, $t7
crc_skip:
        addiu   $t4, $t4, -1
        bne     $t4, $zero, crc_bit
        addiu   $t1, $t1, 1
        bne     $t1, $a1, crc_byte
        not     $t0, $t0
        sw      $t0, 0($a2)
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    const auto data = random_bytes(static_cast<std::size_t>(bytes), 0xC3);
    for (std::size_t i = 0; i < data.size(); ++i) {
      memory.store8(buf_addr + static_cast<std::uint32_t>(i), data[i]);
    }
    state.r[isa::kA0] = buf_addr;
    state.r[isa::kA1] = static_cast<std::uint32_t>(bytes);
    state.r[isa::kA2] = out_addr;
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    const auto data = random_bytes(static_cast<std::size_t>(bytes), 0xC3);
    const std::uint32_t expected = ref_crc32(data);
    const std::uint32_t actual = memory.load32(out_addr);
    if (expected != actual) {
      if (error) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "crc: expected %08x, got %08x", expected, actual);
        *error = buf;
      }
      return false;
    }
    return true;
  };
  return w;
}

// ---------------------------------------------------------------------------
// dct: 8-point DCT-II over a stream of blocks (table-driven matvec)
// ---------------------------------------------------------------------------

Workload make_dct(const SizeConfig& config) {
  const int blocks = config.dct_blocks;
  const std::uint32_t params_addr = kArrayBase;
  const std::uint32_t x_addr = params_addr + 64;
  const std::uint32_t c_addr = x_addr + 32 * static_cast<std::uint32_t>(blocks);
  const std::uint32_t y_addr = c_addr + 64 * 4;

  Workload w;
  w.name = "dct";
  w.description = "8-point DCT-II, " + std::to_string(blocks) + " blocks";
  w.source = R"(# per block: y = C * x with the 8x8 DCT basis matrix
# $a0 = params: 0:x 4:C 8:y 12:blocks
        .text
dct:
        lw      $s0, 0($a0)
        lw      $s1, 4($a0)
        lw      $s2, 8($a0)
        lw      $s3, 12($a0)
        li      $t9, 0               # block
dct_b:
        li      $t0, 0               # output coefficient k
        move    $t6, $s1             # &C[k][0]
dct_k:
        li.s    $f0, 0.0
        sll     $t2, $t9, 5          # 32 bytes per block
        add     $t2, $s0, $t2        # &x[block][0]
        move    $t3, $t6
        li      $t1, 0               # n
dct_n:
        lwc1    $f1, 0($t2)
        lwc1    $f2, 0($t3)
        mul.s   $f3, $f1, $f2
        add.s   $f0, $f0, $f3
        addiu   $t2, $t2, 4
        addiu   $t3, $t3, 4
        addiu   $t1, $t1, 1
        slti    $at, $t1, 8
        bne     $at, $zero, dct_n
        sll     $t4, $t9, 5
        sll     $t5, $t0, 2
        add     $t4, $t4, $t5
        add     $t4, $s2, $t4
        swc1    $f0, 0($t4)          # y[block][k]
        addiu   $t6, $t6, 32         # next basis row
        addiu   $t0, $t0, 1
        slti    $at, $t0, 8
        bne     $at, $zero, dct_k
        addiu   $t9, $t9, 1
        bne     $t9, $s3, dct_b
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    write_floats(memory, x_addr,
                 random_floats(static_cast<std::size_t>(blocks) * 8, 0xDC));
    write_floats(memory, c_addr, dct8_matrix());
    const std::uint32_t params[4] = {x_addr, c_addr, y_addr,
                                     static_cast<std::uint32_t>(blocks)};
    write_words(memory, params_addr, params);
    state.r[isa::kA0] = params_addr;
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    const std::vector<float> x =
        random_floats(static_cast<std::size_t>(blocks) * 8, 0xDC);
    const std::vector<float> c = dct8_matrix();
    std::vector<float> expected(static_cast<std::size_t>(blocks) * 8);
    for (int b = 0; b < blocks; ++b) {
      for (int k = 0; k < 8; ++k) {
        float sum = 0.0f;
        for (int n = 0; n < 8; ++n) {
          const float prod = x[static_cast<std::size_t>(b) * 8 + static_cast<std::size_t>(n)] *
                             c[static_cast<std::size_t>(k) * 8 + static_cast<std::size_t>(n)];
          sum += prod;
        }
        expected[static_cast<std::size_t>(b) * 8 + static_cast<std::size_t>(k)] = sum;
      }
    }
    return compare_floats(expected,
                          read_floats(memory, y_addr, expected.size()), "dct", error);
  };
  return w;
}

// ---------------------------------------------------------------------------
// histogram: byte histogram (data-dependent addressing)
// ---------------------------------------------------------------------------

Workload make_histogram(const SizeConfig& config) {
  const int bytes = config.hist_bytes;
  const std::uint32_t buf_addr = kArrayBase;
  const std::uint32_t bins_addr =
      buf_addr + static_cast<std::uint32_t>(bytes) + 64;

  Workload w;
  w.name = "hist";
  w.description = "byte histogram over " + std::to_string(bytes) + " bytes";
  w.source = R"(# 256-bin byte histogram
# $a0 = buffer, $a1 = length, $a2 = bins (256 words, zeroed)
        .text
hist:
        li      $t0, 0
hist_l:
        add     $t1, $a0, $t0
        lbu     $t2, 0($t1)
        sll     $t2, $t2, 2
        add     $t2, $a2, $t2
        lw      $t3, 0($t2)
        addiu   $t3, $t3, 1
        sw      $t3, 0($t2)
        addiu   $t0, $t0, 1
        bne     $t0, $a1, hist_l
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    const auto data = random_bytes(static_cast<std::size_t>(bytes), 0x41);
    for (std::size_t i = 0; i < data.size(); ++i) {
      memory.store8(buf_addr + static_cast<std::uint32_t>(i), data[i]);
    }
    for (int bin = 0; bin < 256; ++bin) {
      memory.store32(bins_addr + 4 * static_cast<std::uint32_t>(bin), 0);
    }
    state.r[isa::kA0] = buf_addr;
    state.r[isa::kA1] = static_cast<std::uint32_t>(bytes);
    state.r[isa::kA2] = bins_addr;
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    const auto data = random_bytes(static_cast<std::size_t>(bytes), 0x41);
    std::array<std::uint32_t, 256> expected{};
    for (std::uint8_t byte : data) ++expected[byte];
    for (int bin = 0; bin < 256; ++bin) {
      const std::uint32_t actual =
          memory.load32(bins_addr + 4 * static_cast<std::uint32_t>(bin));
      if (actual != expected[static_cast<std::size_t>(bin)]) {
        if (error) {
          *error = "bin " + std::to_string(bin) + ": expected " +
                   std::to_string(expected[static_cast<std::size_t>(bin)]) +
                   ", got " + std::to_string(actual);
        }
        return false;
      }
    }
    return true;
  };
  return w;
}

std::vector<Workload> make_extra(const SizeConfig& config) {
  return {make_fir(config), make_crc32(config), make_dct(config),
          make_histogram(config)};
}

}  // namespace asimt::workloads
