#include "sim/bus.h"

#include <gtest/gtest.h>

#include <random>

#include "bitstream/bitseq.h"

namespace asimt::sim {
namespace {

TEST(BusMonitor, CountsHammingDistances) {
  BusMonitor monitor;
  monitor.observe(0b0000);
  monitor.observe(0b0111);
  monitor.observe(0b0110);
  EXPECT_EQ(monitor.total_transitions(), 3 + 1);
  EXPECT_EQ(monitor.words_observed(), 3u);
}

TEST(BusMonitor, FirstWordCostsNothing) {
  BusMonitor monitor;
  monitor.observe(0xFFFFFFFFu);
  EXPECT_EQ(monitor.total_transitions(), 0);
}

TEST(BusMonitor, PerLineHistogram) {
  BusMonitor monitor(/*per_line=*/true);
  monitor.observe(0b01);
  monitor.observe(0b10);
  monitor.observe(0b00);
  EXPECT_EQ(monitor.per_line()[0], 1);  // 1 -> 0 -> 0
  EXPECT_EQ(monitor.per_line()[1], 2);  // 0 -> 1 -> 0
  EXPECT_EQ(monitor.total_transitions(), 3);
}

TEST(BusMonitor, PerLineSumsMatchTotal) {
  std::mt19937 rng(5);
  BusMonitor monitor(/*per_line=*/true);
  for (int i = 0; i < 500; ++i) monitor.observe(rng());
  long long sum = 0;
  for (long long v : monitor.per_line()) sum += v;
  EXPECT_EQ(sum, monitor.total_transitions());
}

TEST(BusMonitor, MatchesBitstreamHelper) {
  std::mt19937 rng(11);
  std::vector<std::uint32_t> words(200);
  for (auto& w : words) w = rng();
  BusMonitor monitor;
  for (std::uint32_t w : words) monitor.observe(w);
  EXPECT_EQ(monitor.total_transitions(), bits::total_bus_transitions(words));
}

TEST(BusMonitor, Reset) {
  BusMonitor monitor(true);
  monitor.observe(0);
  monitor.observe(~0u);
  monitor.reset();
  EXPECT_EQ(monitor.total_transitions(), 0);
  EXPECT_EQ(monitor.words_observed(), 0u);
  monitor.observe(~0u);  // first word after reset costs nothing
  EXPECT_EQ(monitor.total_transitions(), 0);
}

TEST(TextImage, LookupAndBounds) {
  TextImage image(0x1000, {10, 20, 30});
  EXPECT_TRUE(image.contains(0x1000));
  EXPECT_TRUE(image.contains(0x1008));
  EXPECT_FALSE(image.contains(0x100C));
  EXPECT_FALSE(image.contains(0xFFC));
  EXPECT_EQ(image.word_at(0x1004), 20u);
  EXPECT_EQ(image.base(), 0x1000u);
  EXPECT_EQ(image.size(), 3u);
}

TEST(TextImage, WordAtRejectsOutOfRangePc) {
  // Regression: a pc below base_ used to wrap (pc - base_) around to a huge
  // unsigned index and read past the vector. Both sides must throw.
  TextImage image(0x1000, {10, 20, 30});
  EXPECT_THROW(image.word_at(0xFFC), std::out_of_range);   // just below base
  EXPECT_THROW(image.word_at(0x0), std::out_of_range);     // far below (wraps)
  EXPECT_THROW(image.word_at(0x100C), std::out_of_range);  // one past the end
  EXPECT_EQ(image.word_at(0x1008), 30u);  // last valid word still fine
}

TEST(TextImage, WordAtFloorsUnalignedPcToContainingWord) {
  TextImage image(0x1000, {10, 20, 30});
  EXPECT_EQ(image.word_at(0x1001), 10u);
  EXPECT_EQ(image.word_at(0x1003), 10u);
  EXPECT_EQ(image.word_at(0x1007), 20u);
  EXPECT_EQ(image.word_at(0x100B), 30u);  // last byte of the image
}

TEST(TextImage, EmptyImageContainsNothing) {
  TextImage image;
  EXPECT_FALSE(image.contains(0));
  EXPECT_THROW(image.word_at(0), std::out_of_range);
}

TEST(TextImage, MutableWords) {
  TextImage image(0, {1, 2});
  image.words_mut()[1] = 99;
  EXPECT_EQ(image.word_at(4), 99u);
}

}  // namespace
}  // namespace asimt::sim
