// The scalar oracle: the historical byte-per-bit BitSeq, retained verbatim.
//
// When src/bitstream moved to the packed bit-plane representation
// (bitseq.h), this file kept the original one-bit-per-byte storage and the
// naive per-bit loops as an independent implementation of the same
// contract. It exists to be WRONG-RESISTANT, not fast: every kernel here is
// the obvious scalar formulation, so the differential test layer
// (tests/bitstream/bitplane_equivalence_test.cpp) and the `bitplane` fuzz
// oracle can check the word-parallel code against it bit for bit. Do not
// optimize this file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace asimt::bits {
class BitSeq;  // packed representation (bitseq.h)
}  // namespace asimt::bits

namespace asimt::bits::reference {

// A sequence of bits with index 0 = earliest in time, stored one per byte.
class BitSeq {
 public:
  BitSeq() = default;
  explicit BitSeq(std::size_t n, int fill = 0);

  static BitSeq from_stream_string(std::string_view s);

  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  int operator[](std::size_t i) const { return bits_[i]; }
  void set(std::size_t i, int value) {
    bits_[i] = static_cast<std::uint8_t>(value & 1);
  }
  void push_back(int value) {
    bits_.push_back(static_cast<std::uint8_t>(value & 1));
  }

  // Per-pair scalar loop — the oracle for the packed popcount kernel.
  int transitions() const;
  int transitions_in(std::size_t first, std::size_t last) const;

  BitSeq slice(std::size_t first, std::size_t len) const;
  std::uint64_t to_word(std::size_t n) const;
  std::string to_stream_string() const;

  bool operator==(const BitSeq&) const = default;

 private:
  std::vector<std::uint8_t> bits_;
};

// Scalar loop form of bits::word_transitions.
int word_transitions(std::uint64_t word, int k);

// Conversions between the packed representation and the oracle's.
BitSeq from_packed(const bits::BitSeq& seq);
bits::BitSeq to_packed(const BitSeq& seq);

}  // namespace asimt::bits::reference
