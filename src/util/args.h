// Strict numeric CLI-argument parsing, shared by the asimt front end and the
// standalone bench binaries.
//
// std::atoi / strtoull silently turn junk into 0 (and accept trailing
// garbage), which is how "--tt 1x6" used to mean "no TT budget at all".
// These helpers parse the WHOLE string or return nullopt, so every caller
// can emit a real diagnostic instead. Header-only; include as "util/args.h".
#pragma once

#include <charconv>
#include <optional>
#include <string_view>

namespace asimt::util {

// Parses all of `text` as a base-10 number of type T (no sign prefix for
// unsigned types, optional '-' for signed). Empty input, trailing
// characters, or overflow yield nullopt.
template <typename T>
std::optional<T> parse_number(std::string_view text) {
  T value{};
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (text.empty() || ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

// parse_number<int> constrained to [min, max].
inline std::optional<int> parse_int_in(std::string_view text, int min, int max) {
  const std::optional<int> v = parse_number<int>(text);
  if (!v || *v < min || *v > max) return std::nullopt;
  return v;
}

// Strict assembler-style integer literal: optional sign, then a base prefix
// ("0x"/"0X" hex, leading "0" octal, else decimal) — the strtoll(,,0)
// convention, minus strtoll's two silent failure modes: trailing garbage
// ("8x") and saturating overflow ("99999999999999999999" quietly becoming
// LLONG_MAX, which then truncates into an instruction word with no
// diagnostic). The whole string must parse and fit in long long.
inline std::optional<long long> parse_integer_literal(std::string_view text) {
  std::string_view rest = text;
  bool negative = false;
  if (!rest.empty() && (rest.front() == '+' || rest.front() == '-')) {
    negative = rest.front() == '-';
    rest.remove_prefix(1);
  }
  if (rest.empty()) return std::nullopt;
  int base = 10;
  if (rest.size() > 1 && rest.front() == '0' &&
      (rest[1] == 'x' || rest[1] == 'X')) {
    base = 16;
    rest.remove_prefix(2);
    if (rest.empty()) return std::nullopt;
  } else if (rest.size() > 1 && rest.front() == '0') {
    base = 8;
  }
  // Parse the magnitude unsigned so -0x80000000-style literals keep working,
  // then apply the sign with an explicit range check.
  unsigned long long magnitude = 0;
  const char* const last = rest.data() + rest.size();
  const auto [ptr, ec] = std::from_chars(rest.data(), last, magnitude, base);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  if (negative) {
    if (magnitude > 0x8000000000000000ull) return std::nullopt;
    return static_cast<long long>(0ull - magnitude);
  }
  if (magnitude > 0x7FFFFFFFFFFFFFFFull) return std::nullopt;
  return static_cast<long long>(magnitude);
}

// Strict float literal for .float/li.s operands. Parses as double so a
// denormal-or-smaller constant quietly flushes toward zero (as the hardware
// would), but a magnitude beyond float range ("1e99"), junk, or trailing
// characters is a nullopt — strtof would have silently pinned to +/-inf.
inline std::optional<float> parse_float_literal(std::string_view text) {
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);  // from_chars rejects '+'
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  if (value > 3.4028234663852886e38 || value < -3.4028234663852886e38) {
    return std::nullopt;
  }
  return static_cast<float>(value);
}

}  // namespace asimt::util
