        li      $t0, 0
        li      $t1, 50
loop:   addiu   $t0, $t0, 1
        xor     $t3, $t3, $t0
        sll     $t4, $t3, 2
        addu    $t5, $t4, $t0
        bne     $t0, $t1, loop
        halt
