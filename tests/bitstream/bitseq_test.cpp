#include "bitstream/bitseq.h"

#include <gtest/gtest.h>

#include <random>

namespace asimt::bits {
namespace {

TEST(BitSeq, DefaultIsEmpty) {
  BitSeq seq;
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.size(), 0u);
  EXPECT_EQ(seq.transitions(), 0);
}

TEST(BitSeq, FillConstructor) {
  BitSeq zeros(5);
  EXPECT_EQ(zeros.size(), 5u);
  EXPECT_EQ(zeros.transitions(), 0);
  BitSeq ones(5, 1);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ones[i], 1);
}

TEST(BitSeq, StreamStringRoundTrip) {
  const BitSeq seq = BitSeq::from_stream_string("10110");
  EXPECT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq[0], 1);
  EXPECT_EQ(seq[1], 0);
  EXPECT_EQ(seq.to_stream_string(), "10110");
}

TEST(BitSeq, FigureStringReversesOrder) {
  // Figure notation: rightmost char is the earliest bit.
  const BitSeq seq = BitSeq::from_figure_string("010");
  EXPECT_EQ(seq[0], 0);  // rightmost
  EXPECT_EQ(seq[1], 1);
  EXPECT_EQ(seq[2], 0);
  EXPECT_EQ(seq.to_figure_string(), "010");
}

TEST(BitSeq, RejectsNonBinaryCharacters) {
  EXPECT_THROW(BitSeq::from_stream_string("01x"), std::invalid_argument);
  EXPECT_THROW(BitSeq::from_figure_string("2"), std::invalid_argument);
}

TEST(BitSeq, FromWordUsesLsbFirst) {
  const BitSeq seq = BitSeq::from_word(0b110, 3);
  EXPECT_EQ(seq[0], 0);
  EXPECT_EQ(seq[1], 1);
  EXPECT_EQ(seq[2], 1);
  EXPECT_EQ(seq.to_word(3), 0b110u);
}

TEST(BitSeq, TransitionsCountsAdjacentFlips) {
  EXPECT_EQ(BitSeq::from_stream_string("0101").transitions(), 3);
  EXPECT_EQ(BitSeq::from_stream_string("0000").transitions(), 0);
  EXPECT_EQ(BitSeq::from_stream_string("0110").transitions(), 2);
  EXPECT_EQ(BitSeq::from_stream_string("1").transitions(), 0);
}

TEST(BitSeq, TransitionsInWindow) {
  const BitSeq seq = BitSeq::from_stream_string("010011");
  EXPECT_EQ(seq.transitions_in(0, 5), 3);
  EXPECT_EQ(seq.transitions_in(2, 4), 1);
  EXPECT_EQ(seq.transitions_in(3, 3), 0);
}

TEST(BitSeq, Slice) {
  const BitSeq seq = BitSeq::from_stream_string("010011");
  EXPECT_EQ(seq.slice(1, 3).to_stream_string(), "100");
}

TEST(BitSeq, SetAndPushBack) {
  BitSeq seq(3);
  seq.set(1, 1);
  seq.push_back(1);
  EXPECT_EQ(seq.to_stream_string(), "0101");
}

TEST(WordTransitions, MatchesBitSeq) {
  std::mt19937 rng(123);
  for (int k = 1; k <= 16; ++k) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint32_t word = rng() & ((k >= 32 ? 0 : (1u << k)) - 1u);
      EXPECT_EQ(word_transitions(word, k),
                BitSeq::from_word(word, static_cast<std::size_t>(k)).transitions())
          << "k=" << k << " word=" << word;
    }
  }
}

TEST(WordTransitions, DegenerateSizes) {
  EXPECT_EQ(word_transitions(1, 1), 0);
  EXPECT_EQ(word_transitions(0b10, 2), 1);
}

TEST(VerticalLine, ExtractsColumns) {
  // Figure 1b: the per-line columns of a word sequence.
  const std::uint32_t words[] = {0x1, 0x0, 0x1, 0x0};
  const BitSeq line0 = vertical_line(words, 0);
  EXPECT_EQ(line0.to_stream_string(), "1010");
  const BitSeq line1 = vertical_line(words, 1);
  EXPECT_EQ(line1.to_stream_string(), "0000");
}

TEST(VerticalLine, HighLines) {
  const std::uint32_t words[] = {0x80000000u, 0x0u, 0x80000000u};
  EXPECT_EQ(vertical_line(words, 31).to_stream_string(), "101");
}

TEST(FromVerticalLines, InvertsExtraction) {
  std::mt19937 rng(7);
  std::vector<std::uint32_t> words(17);
  for (auto& w : words) w = rng();
  std::vector<BitSeq> lines;
  for (unsigned b = 0; b < 32; ++b) lines.push_back(vertical_line(words, b));
  EXPECT_EQ(from_vertical_lines(lines, words.size()), words);
}

TEST(FromVerticalLines, ValidatesShape) {
  std::vector<BitSeq> lines(31, BitSeq(4));
  EXPECT_THROW(from_vertical_lines(lines, 4), std::invalid_argument);
  lines.emplace_back(3);  // 32nd line has the wrong length
  EXPECT_THROW(from_vertical_lines(lines, 4), std::invalid_argument);
}

TEST(TotalBusTransitions, SumsHammingDistances) {
  const std::uint32_t words[] = {0b0000, 0b0011, 0b0001};
  EXPECT_EQ(total_bus_transitions(words), 2 + 1);
  EXPECT_EQ(total_bus_transitions(std::span<const std::uint32_t>{}), 0);
}

TEST(TotalBusTransitions, EqualsPerLineSum) {
  std::mt19937 rng(99);
  std::vector<std::uint32_t> words(64);
  for (auto& w : words) w = rng();
  long long per_line_sum = 0;
  for (unsigned b = 0; b < 32; ++b) {
    per_line_sum += vertical_line(words, b).transitions();
  }
  EXPECT_EQ(total_bus_transitions(words), per_line_sum);
}

}  // namespace
}  // namespace asimt::bits
