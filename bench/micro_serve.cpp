// Serving-path microbenchmarks: the warm (cache-hit) handle_line fast path
// with observability on and off. The pair is the overhead guard the ISSUE's
// < 2% budget is measured against — BM_ServeHandleLineWarm/1 (spans +
// histograms enabled) must track BM_ServeHandleLineWarm/0 (recorder
// disabled) through the trajectory gate, and tests/profile/
// serve_overhead_test.cpp asserts the same ratio in-process.
#include <string>

#include "obs/bench.h"
#include "obsv/span.h"
#include "serve/service.h"
#include "telemetry/json.h"

namespace {

using namespace asimt;

const char kServeProgram[] =
    ".text\n"
    "start:\n"
    "  li $t0, 64\n"
    "loop:\n"
    "  addiu $t1, $t1, 3\n"
    "  xor $t2, $t1, $t0\n"
    "  addiu $t0, $t0, -1\n"
    "  bnez $t0, loop\n"
    "  halt\n";

std::string serve_request() {
  json::Value req = json::Value::object();
  req.set("id", 1);
  req.set("op", "encode");
  req.set("text", kServeProgram);
  req.set("k", 5);
  return req.dump();
}

// arg 1 = observability enabled (the default), arg 0 = recorder off.
void BM_ServeHandleLineWarm(obs::BenchContext& ctx, int enabled) {
  serve::ServiceOptions options;
  options.recorder.enabled = enabled != 0;
  serve::Service service(options);
  const std::string line = serve_request();
  service.handle_line(line);  // cold encode: every iteration below is a hit
  obsv::SpanBuilder span;
  std::uint64_t seq = 0;
  ctx.measure([&] {
    span.begin(1, ++seq);
    obs::do_not_optimize(service.handle_line(line, &span));
    span.mark(obsv::Stage::kWrite);
    service.recorder().record(span.span(), nullptr);
  });
}
ASIMT_BENCH_ARG(BM_ServeHandleLineWarm, 0);
ASIMT_BENCH_ARG(BM_ServeHandleLineWarm, 1);

// The miss path for scale: every iteration submits a distinct program (the
// loop bound changes), so the content hash never repeats and the full
// parse + assemble + encode + serialize pipeline runs each time.
void BM_ServeHandleLineMiss(obs::BenchContext& ctx, int) {
  serve::Service service;
  json::Value req = json::Value::object();
  req.set("id", 1);
  req.set("op", "encode");
  req.set("k", 5);
  int bound = 0;
  ctx.measure([&] {
    std::string text =
        ".text\nstart:\n  li $t0, " + std::to_string(16 + (++bound)) +
        "\nloop:\n  addiu $t1, $t1, 3\n  addiu $t0, $t0, -1\n"
        "  bnez $t0, loop\n  halt\n";
    req.set("text", std::move(text));
    obs::do_not_optimize(service.handle_line(req.dump()));
  });
}
ASIMT_BENCH_ARG(BM_ServeHandleLineMiss, 0);

}  // namespace
