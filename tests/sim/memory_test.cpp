#include "sim/memory.h"

#include <gtest/gtest.h>

namespace asimt::sim {
namespace {

TEST(Memory, ZeroInitialized) {
  Memory m;
  EXPECT_EQ(m.load8(0x1234), 0u);
  EXPECT_EQ(m.load32(0xFFFF0000u), 0u);
}

TEST(Memory, ByteRoundTrip) {
  Memory m;
  m.store8(10, 0xAB);
  EXPECT_EQ(m.load8(10), 0xABu);
  EXPECT_EQ(m.load8(11), 0u);
}

TEST(Memory, LittleEndianWords) {
  Memory m;
  m.store32(0x100, 0x11223344u);
  EXPECT_EQ(m.load8(0x100), 0x44u);
  EXPECT_EQ(m.load8(0x101), 0x33u);
  EXPECT_EQ(m.load8(0x102), 0x22u);
  EXPECT_EQ(m.load8(0x103), 0x11u);
  EXPECT_EQ(m.load16(0x100), 0x3344u);
  EXPECT_EQ(m.load16(0x102), 0x1122u);
}

TEST(Memory, HalfWordRoundTrip) {
  Memory m;
  m.store16(0x200, 0xBEEF);
  EXPECT_EQ(m.load16(0x200), 0xBEEFu);
  EXPECT_EQ(m.load32(0x200), 0xBEEFu);
}

TEST(Memory, CrossPageAccesses) {
  Memory m;
  const std::uint32_t boundary = Memory::kPageSize;
  m.store8(boundary - 1, 0x11);
  m.store8(boundary, 0x22);
  EXPECT_EQ(m.load8(boundary - 1), 0x11u);
  EXPECT_EQ(m.load8(boundary), 0x22u);
}

TEST(Memory, AlignmentEnforced) {
  Memory m;
  EXPECT_THROW(m.load32(2), MemoryError);
  EXPECT_THROW(m.store32(6, 0), MemoryError);
  EXPECT_THROW(m.load16(1), MemoryError);
  EXPECT_THROW(m.store16(3, 0), MemoryError);
  EXPECT_NO_THROW(m.load32(4));
}

TEST(Memory, FloatRoundTrip) {
  Memory m;
  m.store_float(0x300, 3.25f);
  EXPECT_EQ(m.load_float(0x300), 3.25f);
  EXPECT_EQ(m.load32(0x300), 0x40500000u);
}

TEST(Memory, LoadProgramPlacesTextAndData) {
  isa::Program program;
  program.text_base = 0x400000;
  program.text = {0xAAAA5555u, 0x12345678u};
  program.data_base = 0x10000000;
  program.data = {1, 2, 3};
  Memory m;
  m.load_program(program);
  EXPECT_EQ(m.load32(0x400000), 0xAAAA5555u);
  EXPECT_EQ(m.load32(0x400004), 0x12345678u);
  EXPECT_EQ(m.load8(0x10000000), 1u);
  EXPECT_EQ(m.load8(0x10000002), 3u);
}

TEST(Memory, InterleavedReadsAndWritesAcrossPages) {
  // Exercises the one-entry page cache with alternating pages.
  Memory m;
  for (int round = 0; round < 4; ++round) {
    for (std::uint32_t page = 0; page < 8; ++page) {
      const std::uint32_t addr = page * Memory::kPageSize + 16;
      m.store32(addr, page * 100 + static_cast<std::uint32_t>(round));
    }
    for (std::uint32_t page = 0; page < 8; ++page) {
      const std::uint32_t addr = page * Memory::kPageSize + 16;
      EXPECT_EQ(m.load32(addr), page * 100 + static_cast<std::uint32_t>(round));
    }
  }
}

}  // namespace
}  // namespace asimt::sim
