// The serving path's observability contract: the metrics op counts exactly
// the replies already sent, Prometheus exposition comes out conformant,
// echo_span never perturbs the cached payload bytes, the dump op feeds the
// flight pipeline, and the slow-request log captures qualifying spans.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include <unistd.h>

#include "obsv/flight.h"
#include "obsv/recorder.h"
#include "serve/service.h"
#include "telemetry/json.h"

namespace asimt::serve {
namespace {

const char kProgram[] =
    ".text\n"
    "start:\n"
    "  li $t0, 12\n"
    "loop:\n"
    "  addiu $t1, $t1, 3\n"
    "  addiu $t0, $t0, -1\n"
    "  bnez $t0, loop\n"
    "  halt\n";

std::string encode_request(int id = 1, int k = 5, bool echo = false) {
  json::Value req = json::Value::object();
  req.set("id", id);
  req.set("op", "encode");
  req.set("text", kProgram);
  req.set("k", k);
  if (echo) req.set("echo_span", true);
  return req.dump();
}

json::Value metrics_of(Service& service, const char* format = nullptr) {
  json::Value req = json::Value::object();
  req.set("id", 99);
  req.set("op", "metrics");
  if (format != nullptr) req.set("format", format);
  const json::Value reply = json::parse(service.handle_line(req.dump()));
  EXPECT_TRUE(reply.at("ok").as_bool());
  return reply.at("result");
}

std::string temp_path(const std::string& tag) {
  return "/tmp/asimt_obs_" + tag + "_" + std::to_string(::getpid());
}

TEST(ServiceObservability, MetricsCountsEqualRepliesAlreadySent) {
  Service service;
  // 1 cold encode (miss) + 3 warm (hits) + 1 distinct-k cold (miss).
  service.handle_line(encode_request(1, 5));
  service.handle_line(encode_request(2, 5));
  service.handle_line(encode_request(3, 5));
  service.handle_line(encode_request(4, 5));
  service.handle_line(encode_request(5, 6));

  const json::Value result = metrics_of(service);
  EXPECT_EQ(result.at("requests").as_int(), 6);  // including the metrics op
  EXPECT_EQ(result.at("errors").as_int(), 0);
  // by_op lists every op exactly once; encode carries all five replies. The
  // count-equality the smoke lane asserts: replies received by a client are
  // already in these histograms (observe happens before the reply bytes go
  // out).
  EXPECT_EQ(result.at("by_op").at("encode").as_int(), 5);
  EXPECT_EQ(result.at("by_op").at("ping").as_int(), 0);
  const json::Value& hists = result.at("histograms");
  EXPECT_EQ(hists.at("encode.hit").at("count").as_int(), 3);
  EXPECT_EQ(hists.at("encode.miss").at("count").as_int(), 2);
  // Quantile fields are present, ordered, and in nanoseconds.
  const json::Value& hit = hists.at("encode.hit");
  EXPECT_GT(hit.at("p50_ns").as_double(), 0.0);
  EXPECT_LE(hit.at("p50_ns").as_double(), hit.at("p99_ns").as_double());
  EXPECT_LE(hit.at("p99_ns").as_double(), hit.at("p999_ns").as_double());
  EXPECT_GT(hit.at("sum_ns").as_int(), 0);
  EXPECT_GT(hit.at("max_ns").as_int(), 0);
  // Cache block satisfies the lookup invariant.
  const json::Value& cache = result.at("cache");
  EXPECT_EQ(cache.at("lookups").as_int(),
            cache.at("hits").as_int() + cache.at("misses").as_int());
  EXPECT_EQ(cache.at("hits").as_int(), 3);
  EXPECT_EQ(cache.at("misses").as_int(), 2);
  EXPECT_EQ(cache.at("insertions").as_int(), 2);
  // Observability self-description.
  EXPECT_TRUE(result.at("observability").at("enabled").as_bool());
}

TEST(ServiceObservability, StatsOpCarriesTheLookupInvariantToo) {
  Service service;
  service.handle_line(encode_request(1));
  service.handle_line(encode_request(2));
  const json::Value reply =
      json::parse(service.handle_line("{\"id\":1,\"op\":\"stats\"}"));
  const json::Value& cache = reply.at("result").at("cache");
  EXPECT_EQ(cache.at("lookups").as_int(), 2);
  EXPECT_EQ(cache.at("lookups").as_int(),
            cache.at("hits").as_int() + cache.at("misses").as_int());
}

TEST(ServiceObservability, MetricsPrometheusFormatIsExpositionText) {
  Service service;
  service.handle_line(encode_request(1));
  service.handle_line(encode_request(2));
  const json::Value result = metrics_of(service, "prometheus");
  EXPECT_EQ(result.at("content_type").as_string(),
            "text/plain; version=0.0.4");
  const std::string& text = result.at("text").as_string();
  EXPECT_NE(text.find("# TYPE asimt_serve_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE asimt_serve_request_ns histogram\n"),
            std::string::npos);
  // requests_total counts the in-flight metrics request too: 2 encodes + 1.
  EXPECT_NE(text.find("asimt_serve_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("asimt_serve_cache_lookups_total 2\n"),
            std::string::npos);
  // Histogram series carry op/outcome labels and the cumulative +Inf bucket.
  EXPECT_NE(text.find("asimt_serve_request_ns_bucket{op=\"encode\","
                      "outcome=\"hit\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("asimt_serve_request_ns_count{op=\"encode\",outcome=\"hit\"}"),
      std::string::npos);
  // HELP/TYPE appear exactly once per family even with many label series.
  const std::string type_line = "# TYPE asimt_serve_request_ns histogram\n";
  const std::size_t first = text.find(type_line);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
}

TEST(ServiceObservability, MetricsRejectsUnknownFormats) {
  Service service;
  const json::Value reply = json::parse(
      service.handle_line("{\"id\":1,\"op\":\"metrics\",\"format\":\"xml\"}"));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("kind").as_string(), "bad_request");
}

TEST(ServiceObservability, EchoSpanSplicesServerNsWithoutTouchingThePayload) {
  Service service;
  const std::string plain_cold = service.handle_line(encode_request(1));
  const std::string echo_warm = service.handle_line(encode_request(1, 5, true));
  const std::string plain_warm = service.handle_line(encode_request(1));

  // Byte-identity holds for non-echo replies, cold or cached.
  EXPECT_EQ(plain_cold, plain_warm);
  // The echoed reply differs only by the spliced field in the envelope.
  EXPECT_NE(echo_warm.find("\"ok\":true,\"server_ns\":"), std::string::npos);
  const std::string stripped =
      std::regex_replace(echo_warm, std::regex("\"server_ns\":[0-9]+,"), "");
  EXPECT_EQ(stripped, plain_cold);
  // And the echoed value is a plausible nanosecond duration.
  const json::Value parsed = json::parse(echo_warm);
  EXPECT_GT(parsed.at("server_ns").as_int(), 0);
}

TEST(ServiceObservability, EchoSpanMustBeABoolean) {
  Service service;
  const json::Value reply = json::parse(service.handle_line(
      "{\"id\":1,\"op\":\"ping\",\"echo_span\":\"yes\"}"));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("kind").as_string(), "bad_request");
}

TEST(ServiceObservability, DisabledObservabilityKeepsReplyBytesIdentical) {
  ServiceOptions off;
  off.recorder.enabled = false;
  Service disabled(off);
  Service enabled;
  // The observability layer must never change what clients receive.
  EXPECT_EQ(disabled.handle_line(encode_request(1)),
            enabled.handle_line(encode_request(1)));
  const json::Value result = metrics_of(disabled);
  EXPECT_FALSE(result.at("observability").at("enabled").as_bool());
  EXPECT_TRUE(result.at("histograms").as_object().empty());
}

TEST(ServiceObservability, DumpWithoutFlightRecorderIsBadRequest) {
  Service service;  // no flight path configured
  const json::Value reply =
      json::parse(service.handle_line("{\"id\":1,\"op\":\"dump\"}"));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("kind").as_string(), "bad_request");
}

TEST(ServiceObservability, DumpOpWritesALoadableFlightFile) {
  const std::string path = temp_path("dump");
  ServiceOptions options;
  options.recorder.flight_path = path;
  Service service(options);

  // Simulate the server loop: spans recorded into an acquired ring.
  obsv::SpanRing* ring = service.recorder().acquire_ring(7);
  ASSERT_NE(ring, nullptr);
  obsv::SpanBuilder sb;
  sb.begin(7, 1);
  service.handle_line(encode_request(1), &sb);
  sb.mark(obsv::Stage::kWrite);
  service.recorder().record(sb.span(), ring);

  const json::Value reply =
      json::parse(service.handle_line("{\"id\":1,\"op\":\"dump\"}"));
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("result").at("path").as_string(), path);
  EXPECT_GE(reply.at("result").at("rows").as_int(), 1);

  const obsv::FlightDump dump = obsv::load_flight_dump(path);
  EXPECT_EQ(dump.reason, "dump_op");
  ASSERT_GE(dump.spans.size(), 1u);
  EXPECT_EQ(dump.spans[0].conn_id, 7u);
  EXPECT_EQ(dump.spans[0].op, static_cast<std::uint8_t>(obsv::Op::kEncode));
  std::remove(path.c_str());
}

TEST(ServiceObservability, SpanBuilderIsAnnotatedAlongTheRequestPath) {
  Service service;
  obsv::SpanBuilder sb;
  sb.begin(3, 1);
  service.handle_line(encode_request(1), &sb);  // cold: miss + execute
  const obsv::Span& cold = sb.span();
  EXPECT_EQ(cold.op, static_cast<std::uint8_t>(obsv::Op::kEncode));
  EXPECT_EQ(cold.outcome, static_cast<std::uint8_t>(obsv::Outcome::kMiss));
  EXPECT_EQ(cold.error_kind, 0);
  EXPECT_GT(cold.request_bytes, 0u);
  EXPECT_GT(cold.payload_bytes, 0u);
  EXPECT_GT(cold.stage_ns[static_cast<unsigned>(obsv::Stage::kParse)], 0u);
  EXPECT_GT(cold.stage_ns[static_cast<unsigned>(obsv::Stage::kExecute)], 0u);

  obsv::SpanBuilder warm;
  warm.begin(3, 2);
  service.handle_line(encode_request(1), &warm);  // warm: hit, no execute
  EXPECT_EQ(warm.span().outcome, static_cast<std::uint8_t>(obsv::Outcome::kHit));
  EXPECT_EQ(warm.span().stage_ns[static_cast<unsigned>(obsv::Stage::kExecute)],
            0u);

  obsv::SpanBuilder bad;
  bad.begin(3, 3);
  service.handle_line("{\"id\":1,\"op\":\"nope\"}", &bad);
  EXPECT_EQ(bad.span().error_kind,
            obsv::error_kind_id("bad_request"));
}

TEST(ServiceObservability, SlowLogCapturesQualifyingSpansAsJsonl) {
  const std::string path = temp_path("slow");
  obsv::RecorderOptions options;
  options.slow_ms = 1;
  options.slow_log_path = path;
  obsv::Recorder recorder(options);

  obsv::Span fast;
  fast.seq = 1;
  fast.stage_ns[static_cast<unsigned>(obsv::Stage::kExecute)] = 10'000;  // 10µs
  obsv::Span slow;
  slow.seq = 2;
  slow.conn_id = 4;
  slow.op = static_cast<std::uint8_t>(obsv::Op::kEncode);
  slow.stage_ns[static_cast<unsigned>(obsv::Stage::kExecute)] = 5'000'000;  // 5ms
  EXPECT_FALSE(recorder.is_slow(fast));
  EXPECT_TRUE(recorder.is_slow(slow));
  recorder.record(fast, nullptr);
  recorder.record(slow, nullptr);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string header_line, row_line, extra;
  ASSERT_TRUE(std::getline(in, header_line));
  ASSERT_TRUE(std::getline(in, row_line));
  EXPECT_FALSE(std::getline(in, extra));  // the fast span stayed out

  // Header: self-describing, manifest-stamped. Row: the span schema.
  const json::Value header = json::parse(header_line);
  EXPECT_EQ(header.at("asimt_slow_log").as_int(), 1);
  EXPECT_EQ(header.at("slow_ms").as_int(), 1);
  EXPECT_NE(header.at("manifest").find("git_sha"), nullptr);
  const json::Value row = json::parse(row_line);
  EXPECT_EQ(row.at("seq").as_int(), 2);
  EXPECT_EQ(row.at("conn").as_int(), 4);
  EXPECT_EQ(row.at("op").as_string(), "encode");
  EXPECT_EQ(row.at("execute_ns").as_int(), 5'000'000);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asimt::serve
