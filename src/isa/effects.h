// Architectural resource effects of one instruction: which registers and
// machine resources it reads and writes. Used by the cold scheduler's
// dependence analysis; useful to any client reordering or analyzing code.
#pragma once

#include <cstdint>

#include "isa/isa.h"

namespace asimt::isa {

struct Effects {
  std::uint32_t int_reads = 0;   // bitmask over $0..$31 ($zero excluded)
  std::uint32_t int_writes = 0;
  std::uint32_t fp_reads = 0;    // bitmask over $f0..$f31
  std::uint32_t fp_writes = 0;
  bool reads_hi = false, writes_hi = false;
  bool reads_lo = false, writes_lo = false;
  bool reads_fcc = false, writes_fcc = false;
  bool mem_read = false, mem_write = false;
  bool control = false;  // branch/jump/halt/syscall: an ordering barrier

  // True when `later` must stay after `this` (RAW/WAR/WAW on any resource,
  // memory ordering with store involvement, or either being control flow).
  bool conflicts_with(const Effects& later) const {
    auto overlap = [](std::uint32_t a, std::uint32_t b) { return (a & b) != 0; };
    if (control || later.control) return true;
    if (overlap(int_writes, later.int_reads | later.int_writes)) return true;
    if (overlap(int_reads, later.int_writes)) return true;
    if (overlap(fp_writes, later.fp_reads | later.fp_writes)) return true;
    if (overlap(fp_reads, later.fp_writes)) return true;
    if ((writes_hi && (later.reads_hi || later.writes_hi)) ||
        (reads_hi && later.writes_hi)) {
      return true;
    }
    if ((writes_lo && (later.reads_lo || later.writes_lo)) ||
        (reads_lo && later.writes_lo)) {
      return true;
    }
    if ((writes_fcc && (later.reads_fcc || later.writes_fcc)) ||
        (reads_fcc && later.writes_fcc)) {
      return true;
    }
    // Loads commute with loads; anything involving a store is ordered
    // (addresses are not analyzed).
    if ((mem_write && (later.mem_read || later.mem_write)) ||
        (mem_read && later.mem_write)) {
      return true;
    }
    return false;
  }
};

// Effects of a decoded instruction. Writes to $zero are dropped (hardware
// ignores them) and reads of $zero are constant, so register 0 never
// creates a dependence.
Effects effects(const Instruction& inst);

}  // namespace asimt::isa
