// Process self-metrics: peak RSS and CPU time, sampled from the kernel's
// accounting (getrusage) rather than estimated.
//
// They flow two ways: `publish_process_metrics()` sets the gauges
// `process.max_rss_bytes`, `process.cpu_user_seconds`, and
// `process.cpu_sys_seconds` on the global metrics registry (exported as
// `asimt_process_*` by the Prometheus exporter), and `to_json` embeds a
// snapshot into bench artifacts so a trajectory entry records what the run
// cost, not just how long it took. Per-phase wall time already flows into
// the registry via the `phase.<name>.us` histograms (telemetry/trace.h).
#pragma once

#include "telemetry/json.h"

namespace asimt::obs {

struct ProcessMetrics {
  long long max_rss_bytes = 0;
  double cpu_user_seconds = 0.0;
  double cpu_sys_seconds = 0.0;
};

// Current values for this process; zeros on platforms without getrusage.
ProcessMetrics sample_process_metrics();

// Sets the process.* gauges on the global registry. Honors the telemetry
// enable switch like every other recorder (no-op when telemetry is off).
void publish_process_metrics();

// {"max_rss_bytes":..,"cpu_user_seconds":..,"cpu_sys_seconds":..}
json::Value to_json(const ProcessMetrics& m);

}  // namespace asimt::obs
