#include "experiments/reprogram.h"

#include <cstdio>

#include "core/tt_format.h"
#include "sim/decoder_port.h"

namespace asimt::experiments {

namespace {

void emit_store(std::string& out, std::uint32_t value, std::uint32_t offset) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "        li      $t9, 0x%x\n"
                "        sw      $t9, %u($t8)\n",
                value, offset);
  out += buf;
}

}  // namespace

std::string decoder_config_assembly(const core::TtConfig& tt,
                                    std::span<const core::BbitEntry> bbit,
                                    std::uint32_t mmio_base) {
  using sim::DecoderPeripheral;
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "        # program the ASIMT decoder peripheral\n"
                "        li      $t8, 0x%x\n",
                mmio_base);
  out += buf;
  emit_store(out, 2, DecoderPeripheral::kCtrl);  // reset
  emit_store(out, static_cast<std::uint32_t>(tt.block_size),
             DecoderPeripheral::kBlockSize);
  emit_store(out, 0, DecoderPeripheral::kTtIndex);
  for (const core::TtEntry& entry : tt.entries) {
    const auto words = core::pack_tt_entry(entry);
    emit_store(out, words[0], DecoderPeripheral::kTtData0);
    emit_store(out, words[1], DecoderPeripheral::kTtData1);
    emit_store(out, words[2], DecoderPeripheral::kTtData2);
    emit_store(out, words[3], DecoderPeripheral::kTtData3);  // commits
  }
  for (const core::BbitEntry& entry : bbit) {
    emit_store(out, entry.pc, DecoderPeripheral::kBbitPc);
    emit_store(out, entry.tt_index, DecoderPeripheral::kBbitIndex);
  }
  emit_store(out, 1, DecoderPeripheral::kCtrl);  // enable decode
  return out;
}

}  // namespace asimt::experiments
