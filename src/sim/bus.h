// Instruction-bus models: transition counting and alternative text images.
//
// The measured quantity of the whole study is the number of 0↔1 transitions
// on the 32 lines of the instruction-memory data bus as words are fetched
// (paper §8). BusMonitor counts them on any word stream; TextImage lets a
// harness look up what an alternative (e.g. power-encoded) program image
// would have driven onto the bus for the same fetch.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bitstream/bitseq.h"
#include "telemetry/metrics.h"

namespace asimt::sim {

// Counts bus transitions over a stream of fetched words.
class BusMonitor {
 public:
  // `per_line` enables the per-bit-line histogram. Flip words are buffered 32
  // at a time and folded into the per-line counters through a 32×32 bit
  // transpose + one popcount per line, so the per-line path costs roughly one
  // word op per observed word instead of 32 shift-and-adds.
  explicit BusMonitor(bool per_line = false) : per_line_(per_line) {}

  void observe(std::uint32_t word) {
    if (!first_) {
      const std::uint32_t flipped = prev_ ^ word;
      total_ += std::popcount(flipped);
      if (per_line_) {
        buffered_[nbuffered_++] = flipped;
        if (nbuffered_ == 32) flush();
      }
    }
    prev_ = word;
    first_ = false;
    ++words_;
  }

  long long total_transitions() const { return total_; }
  const std::array<long long, 32>& per_line() const {
    flush();
    return line_;
  }
  std::uint64_t words_observed() const { return words_; }

  void reset() {
    total_ = 0;
    line_.fill(0);
    nbuffered_ = 0;
    words_ = 0;
    first_ = true;
    prev_ = 0;
  }

  // Publishes the monitor's totals as registry-backed metrics under
  // `<prefix>.transitions`, `<prefix>.words`, and (when per-line counting is
  // on) `<prefix>.line.00` .. `<prefix>.line.31` plus a `<prefix>.line`
  // histogram over the per-line totals. No-op when telemetry is disabled.
  void publish(std::string_view prefix,
               telemetry::MetricsRegistry& registry =
                   telemetry::MetricsRegistry::global()) const {
    if (!telemetry::enabled()) return;
    const std::string base(prefix);
    registry.counter(base + ".transitions").add(total_);
    registry.counter(base + ".words").add(static_cast<long long>(words_));
    if (per_line_) {
      flush();
      telemetry::Histogram& hist = registry.histogram(base + ".line");
      for (unsigned b = 0; b < 32; ++b) {
        char name[8];
        name[0] = static_cast<char>('0' + b / 10);
        name[1] = static_cast<char>('0' + b % 10);
        name[2] = '\0';
        registry.counter(base + ".line." + name).add(line_[b]);
        hist.observe(static_cast<double>(line_[b]));
      }
    }
  }

 private:
  // Transposes the buffered flip words so row b holds line b's flips across
  // the buffered cycles; each line then folds in with a single popcount.
  // Readers trigger a partial flush, hence the mutable accumulation state.
  void flush() const {
    if (nbuffered_ == 0) return;
    std::uint32_t m[32];
    for (std::size_t i = 0; i < nbuffered_; ++i) m[i] = buffered_[i];
    for (std::size_t i = nbuffered_; i < 32; ++i) m[i] = 0;
    bits::transpose32(m);
    for (unsigned b = 0; b < 32; ++b) line_[b] += std::popcount(m[b]);
    nbuffered_ = 0;
  }

  bool per_line_;
  mutable std::array<long long, 32> line_{};
  mutable std::array<std::uint32_t, 32> buffered_{};
  mutable std::size_t nbuffered_ = 0;
  long long total_ = 0;
  std::uint64_t words_ = 0;
  std::uint32_t prev_ = 0;
  bool first_ = true;
};

// A flat image of a text segment: what the instruction memory contains under
// a given encoding. word_at() is the bus value fetched for a PC.
class TextImage {
 public:
  TextImage() = default;
  TextImage(std::uint32_t base, std::vector<std::uint32_t> words)
      : base_(base), words_(std::move(words)) {}

  bool contains(std::uint32_t pc) const {
    return pc >= base_ && pc < base_ + 4 * words_.size();
  }

  // Bus value fetched for `pc`. The pc must lie inside the image (check with
  // contains(); throws std::out_of_range otherwise — a pc below base_ would
  // silently wrap the unsigned offset into a huge index). An unaligned pc
  // reads the word containing it: the byte offset floors to a word boundary.
  std::uint32_t word_at(std::uint32_t pc) const {
    if (!contains(pc)) {
      throw std::out_of_range("TextImage: pc " + std::to_string(pc) +
                              " outside [" + std::to_string(base_) + ", " +
                              std::to_string(base_ + 4 * words_.size()) + ")");
    }
    return words_[(pc - base_) / 4];
  }

  std::uint32_t base() const { return base_; }
  std::size_t size() const { return words_.size(); }
  std::span<const std::uint32_t> words() const { return words_; }
  std::span<std::uint32_t> words_mut() { return words_; }

 private:
  std::uint32_t base_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace asimt::sim
