#include "isa/effects.h"

#include <gtest/gtest.h>

#include "isa/assembler.h"

namespace asimt::isa {
namespace {

Effects fx(const std::string& line) {
  const Program p = assemble(line + "\n");
  return effects(decode(p.text.at(0)));
}

TEST(Effects, AluReadsAndWrites) {
  const Effects e = fx("addu $t2, $t0, $t1");
  EXPECT_EQ(e.int_reads, (1u << kT0) | (1u << kT1));
  EXPECT_EQ(e.int_writes, 1u << kT2);
  EXPECT_FALSE(e.control);
  EXPECT_FALSE(e.mem_read);
}

TEST(Effects, ZeroRegisterCarriesNoDependence) {
  const Effects e = fx("addu $zero, $zero, $t1");
  EXPECT_EQ(e.int_writes, 0u);
  EXPECT_EQ(e.int_reads, 1u << kT1);
}

TEST(Effects, LoadsAndStores) {
  const Effects load = fx("lw $t0, 4($sp)");
  EXPECT_TRUE(load.mem_read);
  EXPECT_FALSE(load.mem_write);
  EXPECT_EQ(load.int_writes, 1u << kT0);
  EXPECT_EQ(load.int_reads, 1u << kSp);
  const Effects store = fx("sw $t0, 4($sp)");
  EXPECT_TRUE(store.mem_write);
  EXPECT_EQ(store.int_reads, (1u << kT0) | (1u << kSp));
  EXPECT_EQ(store.int_writes, 0u);
}

TEST(Effects, HiLoUnit) {
  const Effects mult = fx("mult $t0, $t1");
  EXPECT_TRUE(mult.writes_hi);
  EXPECT_TRUE(mult.writes_lo);
  const Effects mflo = fx("mflo $t2");
  EXPECT_TRUE(mflo.reads_lo);
  EXPECT_FALSE(mflo.reads_hi);
  EXPECT_TRUE(mult.conflicts_with(mflo));
}

TEST(Effects, FpAndMoves) {
  const Effects mul = fx("mul.s $f3, $f1, $f2");
  EXPECT_EQ(mul.fp_reads, (1u << 1) | (1u << 2));
  EXPECT_EQ(mul.fp_writes, 1u << 3);
  const Effects mtc1 = fx("mtc1 $t0, $f1");
  EXPECT_EQ(mtc1.int_reads, 1u << kT0);
  EXPECT_EQ(mtc1.fp_writes, 1u << 1);
  EXPECT_TRUE(mtc1.conflicts_with(mul));  // RAW on $f1
}

TEST(Effects, FccChain) {
  const Effects cmp = fx("c.lt.s $f1, $f2");
  EXPECT_TRUE(cmp.writes_fcc);
  const Effects br = fx("bc1t next\nnext: nop");
  EXPECT_TRUE(br.reads_fcc);
  EXPECT_TRUE(br.control);
  EXPECT_TRUE(cmp.conflicts_with(br));
}

TEST(Effects, ControlIsABarrier) {
  const Effects j = fx("j target\ntarget: nop");
  EXPECT_TRUE(j.control);
  const Effects alu = fx("addu $t2, $t0, $t1");
  EXPECT_TRUE(j.conflicts_with(alu));
  EXPECT_TRUE(alu.conflicts_with(j));
}

TEST(Effects, IndependentInstructionsDoNotConflict) {
  const Effects a = fx("addu $t2, $t0, $t1");
  const Effects b = fx("addu $t5, $t3, $t4");
  EXPECT_FALSE(a.conflicts_with(b));
  EXPECT_FALSE(b.conflicts_with(a));
}

TEST(Effects, HazardKinds) {
  const Effects writer = fx("addiu $t0, $t1, 1");
  const Effects reader = fx("addiu $t2, $t0, 1");
  EXPECT_TRUE(writer.conflicts_with(reader));   // RAW
  EXPECT_TRUE(reader.conflicts_with(writer));   // WAR
  const Effects writer2 = fx("addiu $t0, $t3, 1");
  EXPECT_TRUE(writer.conflicts_with(writer2));  // WAW
}

TEST(Effects, LoadsCommute) {
  const Effects a = fx("lw $t0, 0($sp)");
  const Effects b = fx("lw $t1, 4($sp)");
  EXPECT_FALSE(a.conflicts_with(b));
  const Effects store = fx("sw $t2, 0($sp)");
  EXPECT_TRUE(a.conflicts_with(store));
  EXPECT_TRUE(store.conflicts_with(b));
}

TEST(Effects, JalWritesRa) {
  const Effects e = fx("jal target\ntarget: nop");
  EXPECT_EQ(e.int_writes, 1u << kRa);
  EXPECT_TRUE(e.control);
}

}  // namespace
}  // namespace asimt::isa
