// Each kernel is assembled, simulated, and validated against its C++
// reference implementation on reduced problem sizes.
#include "workloads/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "isa/assembler.h"
#include "workloads/reference.h"

namespace asimt::workloads {
namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, AssemblesSimulatesAndValidates) {
  const Workload w = make_by_name(GetParam(), SizeConfig::small());
  const isa::Program program = isa::assemble(w.source);
  EXPECT_FALSE(program.text.empty());

  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  w.init(memory, cpu.state());
  cpu.run(w.max_steps);
  ASSERT_TRUE(cpu.state().halted) << w.name << " did not halt";

  std::string error;
  EXPECT_TRUE(w.check(memory, &error)) << w.name << ": " << error;
}

TEST_P(WorkloadTest, CheckFailsOnUntouchedMemory) {
  // A fresh memory (inputs written, kernel never run) must not validate —
  // guards against vacuous checks.
  const Workload w = make_by_name(GetParam(), SizeConfig::small());
  sim::Memory memory;
  sim::CpuState state;
  w.init(memory, state);
  std::string error;
  EXPECT_FALSE(w.check(memory, &error)) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadTest,
                         ::testing::Values("mmul", "sor", "ej", "fft", "tri",
                                           "lu"),
                         [](const auto& info) { return info.param; });

TEST(Workloads, MakeAllReturnsPaperOrder) {
  const auto all = make_all(SizeConfig::small());
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "mmul");
  EXPECT_EQ(all[1].name, "sor");
  EXPECT_EQ(all[2].name, "ej");
  EXPECT_EQ(all[3].name, "fft");
  EXPECT_EQ(all[4].name, "tri");
  EXPECT_EQ(all[5].name, "lu");
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_by_name("quicksort"), std::out_of_range);
}

TEST(Lcg, Deterministic) {
  Lcg a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
  Lcg c(42), d(43);
  EXPECT_NE(c.next_u32(), d.next_u32());
}

TEST(Lcg, FloatsInUnitInterval) {
  Lcg lcg(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = lcg.next_float();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(References, FftBitReverseTableIsInvolution) {
  for (int n : {8, 64, 256}) {
    const auto rev = fft_bit_reverse_table(n);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(rev[rev[static_cast<std::size_t>(i)]],
                static_cast<std::uint32_t>(i));
    }
  }
}

TEST(References, FftOfImpulseIsFlat) {
  const int n = 64;
  std::vector<float> re(n, 0.0f), im(n, 0.0f);
  re[0] = 1.0f;
  ref_fft(n, re, im);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(re[static_cast<std::size_t>(i)], 1.0f, 1e-5f);
    EXPECT_NEAR(im[static_cast<std::size_t>(i)], 0.0f, 1e-5f);
  }
}

TEST(References, FftParsevalHolds) {
  const int n = 128;
  Lcg lcg(5);
  std::vector<float> re(n), im(n);
  for (int i = 0; i < n; ++i) {
    re[static_cast<std::size_t>(i)] = lcg.next_float() - 0.5f;
    im[static_cast<std::size_t>(i)] = lcg.next_float() - 0.5f;
  }
  double time_energy = 0;
  for (int i = 0; i < n; ++i) {
    time_energy += re[static_cast<std::size_t>(i)] * re[static_cast<std::size_t>(i)] +
                   im[static_cast<std::size_t>(i)] * im[static_cast<std::size_t>(i)];
  }
  ref_fft(n, re, im);
  double freq_energy = 0;
  for (int i = 0; i < n; ++i) {
    freq_energy += re[static_cast<std::size_t>(i)] * re[static_cast<std::size_t>(i)] +
                   im[static_cast<std::size_t>(i)] * im[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(freq_energy, time_energy * n, time_energy * n * 1e-4);
}

TEST(References, TriSolvesTheSystem) {
  const int n = 24;
  Lcg lcg(9);
  std::vector<float> a(n), b(n), c(n), d(n), x;
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = lcg.next_float();
    c[static_cast<std::size_t>(i)] = lcg.next_float();
    d[static_cast<std::size_t>(i)] = lcg.next_float();
    b[static_cast<std::size_t>(i)] =
        2.0f + a[static_cast<std::size_t>(i)] + c[static_cast<std::size_t>(i)];
  }
  ref_tri(n, a, b, c, d, x);
  // Residual check: A x = d.
  for (int i = 0; i < n; ++i) {
    const std::size_t p = static_cast<std::size_t>(i);
    float lhs = b[p] * x[p];
    if (i > 0) lhs += a[p] * x[p - 1];
    if (i < n - 1) lhs += c[p] * x[p + 1];
    EXPECT_NEAR(lhs, d[p], 1e-4f) << i;
  }
}

TEST(References, LuReconstructsTheMatrix) {
  const int n = 16;
  Lcg lcg(3);
  std::vector<float> original(static_cast<std::size_t>(n) * n);
  for (float& v : original) v = lcg.next_float();
  for (int i = 0; i < n; ++i) {
    original[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)] +=
        static_cast<float>(n);
  }
  std::vector<float> lu = original;
  ref_lu(n, lu);
  // (L U)[i][j] must reproduce the original matrix.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0;
      for (int k = 0; k <= std::min(i, j); ++k) {
        const double l = (k == i) ? 1.0 : lu[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(k)];
        const double u = lu[static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)];
        if (k <= j && k <= i) sum += (k < i ? l : 1.0) * u;
      }
      EXPECT_NEAR(sum, original[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)],
                  2e-3 * n) << i << "," << j;
    }
  }
}

TEST(References, SorConvergesTowardHarmonicInterior) {
  // With fixed boundary and enough sweeps the interior approaches the
  // 5-point harmonic balance; a few sweeps must at least shrink the maximal
  // residual.
  const int n = 16;
  Lcg lcg(12);
  std::vector<float> u(static_cast<std::size_t>(n) * n);
  for (float& v : u) v = lcg.next_float();
  auto max_residual = [&](const std::vector<float>& grid) {
    float worst = 0;
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        const std::size_t p = static_cast<std::size_t>(i) * n + j;
        const float r = grid[p - static_cast<std::size_t>(n)] + grid[p + static_cast<std::size_t>(n)] +
                        grid[p - 1] + grid[p + 1] - 4 * grid[p];
        worst = std::max(worst, std::fabs(r));
      }
    }
    return worst;
  };
  const float before = max_residual(u);
  ref_sor(n, 30, u);
  EXPECT_LT(max_residual(u), before * 0.05f);
}

}  // namespace
}  // namespace asimt::workloads
