// Generates the "set of instructions inserted within the application code
// and executed just prior to entering the loop" (§7.1): an assembly
// sequence that programs a DecoderPeripheral's TT and BBIT through its
// memory-mapped registers and flips the enable bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/hw_tables.h"

namespace asimt::experiments {

// Emits assembly text (clobbers $t8/$t9) that resets the peripheral mapped
// at `mmio_base`, uploads every TT entry and BBIT pair, and enables decode.
std::string decoder_config_assembly(const core::TtConfig& tt,
                                    std::span<const core::BbitEntry> bbit,
                                    std::uint32_t mmio_base);

}  // namespace asimt::experiments
