#include "power/power.h"

#include <gtest/gtest.h>

namespace asimt::power {
namespace {

TEST(Power, TransitionEnergyScalesLinearly) {
  const BusParams params{10e-12, 2.0};
  EXPECT_DOUBLE_EQ(transition_energy_joules(1, params), 0.5 * 10e-12 * 4.0);
  EXPECT_DOUBLE_EQ(transition_energy_joules(1000, params),
                   1000 * transition_energy_joules(1, params));
  EXPECT_DOUBLE_EQ(transition_energy_joules(0, params), 0.0);
}

TEST(Power, OffChipCostsMoreThanOnChip) {
  EXPECT_GT(transition_energy_joules(1000, BusParams::off_chip()),
            transition_energy_joules(1000, BusParams::on_chip()));
}

TEST(Power, ReductionPercent) {
  EXPECT_DOUBLE_EQ(reduction_percent(100, 50), 50.0);
  EXPECT_DOUBLE_EQ(reduction_percent(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(reduction_percent(100, 120), -20.0);
  EXPECT_DOUBLE_EQ(reduction_percent(0, 0), 0.0);
}

TEST(Power, ReportFields) {
  const EnergyReport report = make_report("base", 500, 100, BusParams::on_chip());
  EXPECT_EQ(report.label, "base");
  EXPECT_EQ(report.transitions, 500);
  EXPECT_EQ(report.fetches, 100u);
  EXPECT_DOUBLE_EQ(report.transitions_per_fetch(), 5.0);
  EXPECT_GT(report.energy_joules, 0.0);
  const EnergyReport empty = make_report("x", 0, 0, BusParams::on_chip());
  EXPECT_DOUBLE_EQ(empty.transitions_per_fetch(), 0.0);
}

TEST(Power, ComparisonFormatting) {
  const EnergyReport baseline = make_report("baseline", 1000, 100, BusParams::on_chip());
  const EnergyReport encoded = make_report("encoded", 600, 100, BusParams::on_chip());
  const std::string text = format_comparison(baseline, encoded);
  EXPECT_NE(text.find("baseline"), std::string::npos);
  EXPECT_NE(text.find("encoded"), std::string::npos);
  EXPECT_NE(text.find("40.0%"), std::string::npos);
}

}  // namespace
}  // namespace asimt::power
