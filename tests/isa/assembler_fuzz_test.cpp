// Robustness: the assembler must reject arbitrary garbage with a clean
// AssemblyError (never crash, never emit silently wrong code).
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "isa/assembler.h"

namespace asimt::isa {
namespace {

TEST(AssemblerFuzz, RandomPrintableGarbage) {
  std::mt19937 rng(0xFADE);
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789$,.()-: \t#%";
  for (int trial = 0; trial < 300; ++trial) {
    std::string source;
    const int lines = 1 + static_cast<int>(rng() % 5);
    for (int l = 0; l < lines; ++l) {
      const int len = static_cast<int>(rng() % 40);
      for (int i = 0; i < len; ++i) {
        source.push_back(charset[rng() % charset.size()]);
      }
      source.push_back('\n');
    }
    try {
      const Program p = assemble(source);
      // Accepting is fine (comments, labels, blank lines) but anything
      // emitted must be decodable or an explicit .word.
      (void)p;
    } catch (const AssemblyError&) {
      // expected for most inputs
    }
  }
}

TEST(AssemblerFuzz, ValidMnemonicsWithMangledOperands) {
  std::mt19937 rng(0xBEAD);
  const char* mnemonics[] = {"addu", "lw",   "sw",    "beq",  "j",
                             "sll",  "mult", "mul.s", "lwc1", "li",
                             "la",   "jr",   "bne",   "lui",  "c.lt.s"};
  const char* operands[] = {"$t0",    "$f1",  "42",     "-1",   "0x10",
                            "4($t1)", "($t2)", "label",  "$zero", "",
                            "$t9x",   "99999999", "%hi(x)", "$32"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string line = mnemonics[rng() % std::size(mnemonics)];
    const int count = static_cast<int>(rng() % 4);
    for (int i = 0; i < count; ++i) {
      line += i == 0 ? " " : ", ";
      line += operands[rng() % std::size(operands)];
    }
    line += "\n";
    try {
      assemble(line);
    } catch (const AssemblyError& e) {
      EXPECT_EQ(e.line(), 1);
    }
  }
}

TEST(AssemblerFuzz, DeepLabelChainsAndComments) {
  std::string source;
  for (int i = 0; i < 200; ++i) {
    source += "l" + std::to_string(i) + ": # comment " + std::to_string(i) + "\n";
  }
  source += "        j l0\n";
  const Program p = assemble(source);
  EXPECT_EQ(p.text.size(), 1u);
  EXPECT_EQ(p.symbol("l0"), p.symbol("l199"));
}

TEST(AssemblerFuzz, HugePrograms) {
  std::string source;
  for (int i = 0; i < 20'000; ++i) source += "        addiu $t0, $t0, 1\n";
  source += "        halt\n";
  const Program p = assemble(source);
  EXPECT_EQ(p.text.size(), 20'001u);
}

}  // namespace
}  // namespace asimt::isa
