#include "core/phased.h"

#include <algorithm>

namespace asimt::core {

std::uint64_t Phase::reprogram_instructions_per_entry() const {
  // One li for the peripheral base plus (li, sw) per register write:
  // reset, block size, TT index seed, four data words per TT entry, two
  // writes per BBIT pair, and the enable. li of a 32-bit constant is two
  // instructions in the worst case; count every li as two for a
  // conservative estimate.
  const std::uint64_t stores = 3 + 4 * selection.tt.entries.size() +
                               2 * selection.bbit.size() + 1;
  return 2 + 3 * stores;  // li (2 words) + sw per store
}

std::vector<std::uint32_t> PhasedSelection::apply_to_text(
    std::span<const std::uint32_t> original_text,
    std::uint32_t text_base) const {
  std::vector<std::uint32_t> image(original_text.begin(), original_text.end());
  for (const Phase& phase : phases) {
    for (const BlockEncoding& enc : phase.selection.encodings) {
      const std::size_t first = (enc.start_pc - text_base) / 4;
      for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
        image[first + i] = enc.encoded_words[i];
      }
    }
  }
  return image;
}

PhasedSelection select_phased(const cfg::Cfg& cfg, const cfg::Profile& profile,
                              const SelectionOptions& options,
                              PhaseGranularity granularity) {
  const std::vector<cfg::Loop> all_loops = cfg::find_natural_loops(cfg);

  std::vector<cfg::Loop> loops;
  std::vector<int> owner(cfg.blocks.size(), -1);
  if (granularity == PhaseGranularity::kOutermostLoops) {
    // A phase is a MAXIMAL loop nest: software reprograms once per nest
    // entry, not before every inner-loop trip. Keep only loops not nested
    // inside another loop.
    for (std::size_t i = 0; i < all_loops.size(); ++i) {
      bool nested = false;
      for (std::size_t j = 0; j < all_loops.size() && !nested; ++j) {
        if (i == j || all_loops[j].body.size() <= all_loops[i].body.size()) continue;
        nested = std::includes(all_loops[j].body.begin(), all_loops[j].body.end(),
                               all_loops[i].body.begin(), all_loops[i].body.end());
      }
      if (!nested) loops.push_back(all_loops[i]);
    }
    // Assign each block to the (first) maximal loop containing it.
    for (std::size_t li = 0; li < loops.size(); ++li) {
      for (int block : loops[li].body) {
        const auto b = static_cast<std::size_t>(block);
        if (owner[b] < 0) owner[b] = static_cast<int>(li);
      }
    }
  } else {
    // Innermost granularity: each block belongs to the smallest loop
    // containing it; every loop becomes a phase with the full budget.
    loops = all_loops;
    std::vector<std::size_t> owner_size(cfg.blocks.size(), ~std::size_t{0});
    for (std::size_t li = 0; li < loops.size(); ++li) {
      for (int block : loops[li].body) {
        const auto b = static_cast<std::size_t>(block);
        if (loops[li].body.size() < owner_size[b]) {
          owner[b] = static_cast<int>(li);
          owner_size[b] = loops[li].body.size();
        }
      }
    }
  }

  PhasedSelection result;
  for (std::size_t li = 0; li < loops.size(); ++li) {
    Phase phase;
    phase.loop_header = loops[li].header;
    for (std::size_t b = 0; b < owner.size(); ++b) {
      if (owner[b] == static_cast<int>(li)) phase.blocks.push_back(static_cast<int>(b));
    }
    if (phase.blocks.empty()) continue;

    // Selection sees only this phase's blocks.
    cfg::Profile restricted = profile;
    for (std::size_t b = 0; b < restricted.block_counts.size(); ++b) {
      if (owner[b] != static_cast<int>(li)) restricted.block_counts[b] = 0;
    }
    phase.selection = select_and_encode(cfg, restricted, options);
    if (phase.selection.encodings.empty()) continue;

    // Dynamic activations: edges entering the phase from non-phase blocks.
    for (const auto& [key, count] : profile.edge_counts) {
      const int from = static_cast<int>(key >> 32);
      const int to = static_cast<int>(key & 0xFFFFFFFFu);
      if (owner[static_cast<std::size_t>(to)] == static_cast<int>(li) &&
          owner[static_cast<std::size_t>(from)] != static_cast<int>(li)) {
        phase.entries_from_outside += count;
      }
    }
    result.reprogram_instructions +=
        phase.entries_from_outside * phase.reprogram_instructions_per_entry();
    result.phases.push_back(std::move(phase));
  }

  const auto image = result.apply_to_text(cfg.text, cfg.text_base);
  result.encoded_transitions = cfg::dynamic_transitions(cfg, profile, image);
  return result;
}

}  // namespace asimt::core
